//! Storm scenario generators: stress environments that push the error
//! rate far past what the open-loop single-pulse throttle was tuned
//! for, exercising the [`crate::LadderGovernor`] escalation ladder.
//!
//! Each scenario is a named, seeded recipe over
//! `timber_variability::VariabilityBuilder`; one `(scenario, seed)`
//! pair reproduces the whole environment bit-for-bit.

use timber_variability::{CompositeVariability, VariabilityBuilder};

/// A named stress environment for soak campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StormScenario {
    /// Dense resonant voltage-droop events: the paper's dominant
    /// slow-changing global source, cranked until droops overlap and
    /// several consecutive cycles flag together (multi-stage storms).
    DroopTrain,
    /// Aggressive aging slope plus moderate droop: delay drifts upward
    /// through the run, so a fixed margin that held at cycle 10² is
    /// gone by cycle 10⁵ — sustained escalation pressure, not bursts.
    AgingRamp,
    /// Heavy fast local jitter over per-stage process spread: dense
    /// uncorrelated single-stage flags — a high flag *rate* without a
    /// common-mode cause, probing estimator hysteresis.
    FlagSpikes,
}

impl StormScenario {
    /// All scenarios, in report order.
    pub const ALL: [StormScenario; 3] = [
        StormScenario::DroopTrain,
        StormScenario::AgingRamp,
        StormScenario::FlagSpikes,
    ];

    /// Stable machine-readable name (CLI flag value, report key).
    pub fn name(self) -> &'static str {
        match self {
            StormScenario::DroopTrain => "droop-train",
            StormScenario::AgingRamp => "aging-ramp",
            StormScenario::FlagSpikes => "flag-spikes",
        }
    }

    /// Parses a scenario name as produced by [`StormScenario::name`].
    pub fn parse(s: &str) -> Option<StormScenario> {
        StormScenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// Builds the delay-derating environment for `stages` pipeline
    /// stages, fully determined by `seed`.
    pub fn build(self, stages: usize, seed: u64) -> CompositeVariability {
        let b = VariabilityBuilder::new(seed);
        match self {
            StormScenario::DroopTrain => b
                // Deep droops arriving every ~60 cycles with a short
                // resonance period: events overlap into trains.
                .voltage_droop(0.20, 48, 60.0)
                .local_jitter(0.01)
                .build(),
            StormScenario::AgingRamp => b
                // 6% per decade: +18% by cycle 10³, +30% by 10⁵.
                .aging(0.06)
                .voltage_droop(0.08, 500, 400.0)
                .process(stages, 0.02)
                .build(),
            StormScenario::FlagSpikes => b
                // σ = 5% iid per (cycle, stage): frequent independent
                // overshoots with no global component.
                .local_jitter(0.05)
                .process(stages, 0.03)
                .build(),
        }
    }
}

impl std::fmt::Display for StormScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timber_variability::DelaySource;

    #[test]
    fn names_round_trip() {
        for sc in StormScenario::ALL {
            assert_eq!(StormScenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(StormScenario::parse("quiet"), None);
    }

    #[test]
    fn environments_are_reproducible() {
        for sc in StormScenario::ALL {
            let mut a = sc.build(4, 17);
            let mut b = sc.build(4, 17);
            for c in 0..256u64 {
                for s in 0..4 {
                    assert_eq!(a.factor(c, s), b.factor(c, s), "{sc} cycle {c}");
                }
            }
        }
    }

    #[test]
    fn storms_actually_derate() {
        // Every scenario must push delays meaningfully past nominal
        // somewhere in the first few thousand cycles — a storm that
        // never slows anything exercises nothing.
        for sc in StormScenario::ALL {
            let mut env = sc.build(4, 3);
            let mut max = 0.0f64;
            for c in 0..4_000u64 {
                for s in 0..4 {
                    max = max.max(env.factor(c, s));
                }
            }
            assert!(max > 1.08, "{sc}: max factor {max} too tame");
        }
    }

    #[test]
    fn seeds_differentiate_runs() {
        let mut a = StormScenario::DroopTrain.build(4, 1);
        let mut b = StormScenario::DroopTrain.build(4, 2);
        let differs = (0..512u64).any(|c| a.factor(c, 0) != b.factor(c, 0));
        assert!(differs);
    }
}
