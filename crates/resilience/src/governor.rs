//! The closed-loop degraded-mode governor.
//!
//! The paper's central error control unit reduces clock frequency when
//! a flagged error escapes the TB intervals (§4). A single open-loop
//! pulse is the right response to an *isolated* flag, but a sustained
//! error storm — a resonant droop train, aging drift pushing a whole
//! region past its margin — keeps flagging faster than one fixed
//! episode can drain. [`LadderGovernor`] closes the loop: a windowed
//! flag-rate estimator drives a four-level escalation ladder with
//! hysteresis, a bounded escalation deadline, and guaranteed
//! de-escalation back to nominal once flags cease.
//!
//! # The ladder
//!
//! | level | name          | meaning                                       |
//! |-------|---------------|-----------------------------------------------|
//! | 0     | nominal       | full frequency                                |
//! | 1     | throttle      | the paper's temporary slow-down               |
//! | 2     | deep-throttle | storm persists: slow further                  |
//! | 3     | safe-mode     | replay fallback: flush in-flight borrows and  |
//! |       |               | re-execute at a conservatively slow clock     |
//!
//! Safe-mode is deliberately a *Razor-style* fallback rather than more
//! TIMBER masking: when the flag rate shows the environment has shifted
//! beyond what the checking period can absorb, continuing to borrow
//! would accumulate unbounded multi-stage chains; discarding the
//! speculative borrow state and replaying at a safe clock is the only
//! mode with a correctness guarantee.
//!
//! # Control law
//!
//! Cycles are grouped into fixed windows of `window` cycles. At each
//! window close, the flag count `F` of the closed window drives one
//! decision (actuated `latency_cycles` later, the consolidation
//! budget):
//!
//! * `F ≥ escalate_flags` → escalate one level;
//! * `F ≤ deescalate_flags` → a *clean* window; after `hold_windows`
//!   consecutive clean windows, de-escalate one level;
//! * otherwise (the hysteresis dead zone) at an elevated level: after
//!   `deadline_windows` consecutive not-clean windows at the same
//!   level, escalate anyway — the bounded recovery deadline. A level
//!   either recovers within its deadline or stops pretending it can.
//!
//! Every transition is reported through [`LadderGovernor::take_transition`]
//! so the simulator can emit telemetry events and perform the
//! safe-mode replay flush.
//!
//! # Query contract
//!
//! Like `timber_pipeline::FrequencyController`, [`LadderGovernor::period_at`]
//! must be queried with non-decreasing cycles; a regressing query is a
//! caller bug (debug builds assert). Release builds answer a regressed
//! query from the current level without rewinding the estimator.

use timber_netlist::Picos;

/// One rung of the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GovernorLevel {
    /// Full frequency.
    Nominal,
    /// The paper's temporary slow-down.
    Throttle,
    /// Sustained storm: slow further.
    DeepThrottle,
    /// Replay fallback at a conservatively slow clock.
    SafeMode,
}

impl GovernorLevel {
    /// All levels, bottom to top.
    pub const ALL: [GovernorLevel; 4] = [
        GovernorLevel::Nominal,
        GovernorLevel::Throttle,
        GovernorLevel::DeepThrottle,
        GovernorLevel::SafeMode,
    ];

    /// Ladder index (0 = nominal … 3 = safe-mode).
    pub fn index(self) -> u8 {
        match self {
            GovernorLevel::Nominal => 0,
            GovernorLevel::Throttle => 1,
            GovernorLevel::DeepThrottle => 2,
            GovernorLevel::SafeMode => 3,
        }
    }

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            GovernorLevel::Nominal => "nominal",
            GovernorLevel::Throttle => "throttle",
            GovernorLevel::DeepThrottle => "deep-throttle",
            GovernorLevel::SafeMode => "safe-mode",
        }
    }

    fn up(self) -> GovernorLevel {
        match self {
            GovernorLevel::Nominal => GovernorLevel::Throttle,
            GovernorLevel::Throttle => GovernorLevel::DeepThrottle,
            GovernorLevel::DeepThrottle | GovernorLevel::SafeMode => GovernorLevel::SafeMode,
        }
    }

    fn down(self) -> GovernorLevel {
        match self {
            GovernorLevel::Nominal | GovernorLevel::Throttle => GovernorLevel::Nominal,
            GovernorLevel::DeepThrottle => GovernorLevel::Throttle,
            GovernorLevel::SafeMode => GovernorLevel::DeepThrottle,
        }
    }
}

/// Tuning of the [`LadderGovernor`] (all plain scalars, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Flag-rate estimator window, in cycles.
    pub window: u64,
    /// Flags in one window at or above which the governor escalates.
    pub escalate_flags: u64,
    /// Flags in one window at or below which the window counts as
    /// clean (must be `< escalate_flags`: the hysteresis band).
    pub deescalate_flags: u64,
    /// Consecutive clean windows required to step down one level.
    pub hold_windows: u64,
    /// Consecutive not-clean windows an elevated level may linger in
    /// the hysteresis dead zone before the deadline forces another
    /// escalation.
    pub deadline_windows: u64,
    /// Consolidation latency from decision to actuation, in cycles
    /// (must be `< window`).
    pub latency_cycles: u64,
    /// Extra period at [`GovernorLevel::Throttle`] (0.10 = 10% slower).
    pub throttle_factor: f64,
    /// Extra period at [`GovernorLevel::DeepThrottle`].
    pub deep_factor: f64,
    /// Extra period at [`GovernorLevel::SafeMode`] — the ladder
    /// maximum: no period the governor ever returns exceeds
    /// `nominal * (1 + safe_factor)`.
    pub safe_factor: f64,
}

impl Default for GovernorConfig {
    /// Paper-consistent defaults: 64-cycle estimator windows, a 2-cycle
    /// consolidation latency (the Fig. 2 budget rounded up), 10%
    /// throttle matching the open-loop controller, 25% deep throttle,
    /// 50% safe-mode.
    fn default() -> GovernorConfig {
        GovernorConfig {
            window: 64,
            escalate_flags: 8,
            deescalate_flags: 1,
            hold_windows: 4,
            deadline_windows: 8,
            latency_cycles: 2,
            throttle_factor: 0.10,
            deep_factor: 0.25,
            safe_factor: 0.50,
        }
    }
}

impl GovernorConfig {
    fn validate(&self) {
        assert!(self.window > 0, "estimator window must be positive");
        assert!(
            self.escalate_flags > 0,
            "escalation threshold must be positive"
        );
        assert!(
            self.deescalate_flags < self.escalate_flags,
            "hysteresis requires deescalate_flags < escalate_flags"
        );
        assert!(self.hold_windows > 0, "hold must be at least one window");
        assert!(
            self.deadline_windows > 0,
            "deadline must be at least one window"
        );
        assert!(
            self.latency_cycles < self.window,
            "actuation latency must fit inside one window"
        );
        assert!(
            0.0 <= self.throttle_factor
                && self.throttle_factor <= self.deep_factor
                && self.deep_factor <= self.safe_factor,
            "ladder factors must be non-negative and non-decreasing"
        );
    }

    fn factor(&self, level: GovernorLevel) -> f64 {
        match level {
            GovernorLevel::Nominal => 0.0,
            GovernorLevel::Throttle => self.throttle_factor,
            GovernorLevel::DeepThrottle => self.deep_factor,
            GovernorLevel::SafeMode => self.safe_factor,
        }
    }
}

/// One actuated ladder transition, reported exactly once through
/// [`LadderGovernor::take_transition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderTransition {
    /// Cycle at which the new level took effect.
    pub cycle: u64,
    /// Level left.
    pub from: GovernorLevel,
    /// Level entered.
    pub to: GovernorLevel,
    /// Period in force at the new level.
    pub period: Picos,
}

impl LadderTransition {
    /// True for an upward (escalating) transition.
    pub fn is_escalation(&self) -> bool {
        self.to > self.from
    }
}

/// Window-granular control state of a [`LadderGovernor`], normalized so
/// the currently open estimator window starts at cycle 0.
///
/// This is the exact state space an explicit-state reachability check
/// must enumerate: the ladder level, both hysteresis counters, and any
/// decision still awaiting actuation (its cycle re-based to the window
/// start). Per-cycle bookkeeping (`flags_in_window`, `last_cycle`,
/// lifetime counters) is deliberately excluded — captured *at a window
/// boundary* it is always zero, which is what makes the reachable set
/// finite. `timber-analyze` drives [`LadderGovernor::restore`] +
/// [`LadderGovernor::state`] to prove the published
/// [`LadderGovernor::recovery_bound`] from structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GovernorState {
    /// Ladder level in force.
    pub level: GovernorLevel,
    /// Consecutive clean windows observed at this level.
    pub clean_windows: u64,
    /// Consecutive dead-zone windows observed at this level.
    pub dirty_windows: u64,
    /// Decision awaiting actuation: (cycles after the open window's
    /// start, target level).
    pub pending: Option<(u64, GovernorLevel)>,
}

impl GovernorState {
    /// The state every governor starts in.
    pub fn initial() -> GovernorState {
        GovernorState {
            level: GovernorLevel::Nominal,
            clean_windows: 0,
            dirty_windows: 0,
            pending: None,
        }
    }
}

/// The closed-loop escalation-ladder governor. See the module docs for
/// the control law.
#[derive(Debug, Clone)]
pub struct LadderGovernor {
    nominal: Picos,
    config: GovernorConfig,
    level: GovernorLevel,
    /// First cycle of the currently open estimator window.
    window_start: u64,
    flags_in_window: u64,
    clean_windows: u64,
    /// Consecutive not-clean windows observed at the current level.
    dirty_windows: u64,
    /// Decision awaiting actuation: (actuation cycle, target level).
    pending: Option<(u64, GovernorLevel)>,
    /// Most recent actuated transition, until the owner collects it.
    transition: Option<LadderTransition>,
    last_cycle: u64,
    escalations: u64,
    deescalations: u64,
    safe_mode_entries: u64,
}

impl LadderGovernor {
    /// Creates a governor at [`GovernorLevel::Nominal`].
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (zero window, inverted
    /// hysteresis band, latency not smaller than the window, or
    /// decreasing ladder factors) or `nominal` is not positive.
    pub fn new(nominal: Picos, config: GovernorConfig) -> LadderGovernor {
        assert!(nominal > Picos::ZERO, "nominal period must be positive");
        config.validate();
        LadderGovernor {
            nominal,
            config,
            level: GovernorLevel::Nominal,
            window_start: 0,
            flags_in_window: 0,
            clean_windows: 0,
            dirty_windows: 0,
            pending: None,
            transition: None,
            last_cycle: 0,
            escalations: 0,
            deescalations: 0,
            safe_mode_entries: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// Current ladder level.
    pub fn level(&self) -> GovernorLevel {
        self.level
    }

    /// True while any slow-down (level above nominal) is in force.
    pub fn is_slowed(&self) -> bool {
        self.level != GovernorLevel::Nominal
    }

    /// Upward transitions actuated so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Downward transitions actuated so far.
    pub fn deescalations(&self) -> u64 {
        self.deescalations
    }

    /// Safe-mode entries actuated so far.
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe_mode_entries
    }

    /// The ladder maximum: no period [`LadderGovernor::period_at`] ever
    /// returns exceeds this.
    pub fn max_period(&self) -> Picos {
        self.nominal.scale(1.0 + self.config.safe_factor)
    }

    /// Period at `level` under this governor's config.
    pub fn period_of(&self, level: GovernorLevel) -> Picos {
        self.nominal.scale(1.0 + self.config.factor(level))
    }

    /// Upper bound, in cycles, on returning to nominal once flags
    /// cease: the tail of the window in which the last flag landed,
    /// then at most three de-escalation steps of `hold_windows` clean
    /// windows each, each actuated `latency_cycles` late.
    pub fn recovery_bound(&self) -> u64 {
        let steps = (GovernorLevel::ALL.len() - 1) as u64;
        (steps * self.config.hold_windows + 1) * self.config.window
            + steps * self.config.latency_cycles
            + self.config.window
    }

    /// Records a flagged error at `cycle` (attributed to the estimator
    /// window currently open; the consolidation latency is applied at
    /// actuation, not here).
    pub fn flag_error(&mut self, cycle: u64) {
        debug_assert!(
            cycle >= self.window_start || cycle >= self.last_cycle,
            "LadderGovernor::flag_error must not run ahead of period_at queries"
        );
        let _ = cycle;
        self.flags_in_window += 1;
    }

    /// Advances the estimator to `cycle` and returns the clock period
    /// in force.
    ///
    /// Queries must use non-decreasing cycles (debug builds assert); a
    /// release-mode regression is answered from the current level
    /// without rewinding the estimator.
    pub fn period_at(&mut self, cycle: u64) -> Picos {
        debug_assert!(
            cycle >= self.last_cycle,
            "LadderGovernor::period_at must be queried with non-decreasing cycles \
             (got {cycle} after {})",
            self.last_cycle
        );
        if cycle < self.last_cycle {
            return self.period_of(self.level);
        }
        self.last_cycle = cycle;
        // Close every estimator window the query has moved past. Flags
        // recorded since the last close are attributed to the oldest
        // still-open window (exact for the simulator's per-cycle
        // queries; a jump can only batch flags forward, never back).
        while cycle >= self.window_start + self.config.window {
            let close = self.window_start + self.config.window;
            self.decide(close);
            self.window_start = close;
            self.flags_in_window = 0;
            // Apply a zero-or-short-latency decision that falls inside
            // the region we are skipping over.
            self.actuate_until(cycle);
        }
        self.actuate_until(cycle);
        self.period_of(self.level)
    }

    /// Collects the most recent actuated transition, if any. The
    /// pipeline simulator polls this every cycle to emit telemetry and
    /// perform the safe-mode replay flush; at most one transition can
    /// actuate per cycle, so polling per cycle observes every one.
    pub fn take_transition(&mut self) -> Option<LadderTransition> {
        self.transition.take()
    }

    /// Captures the window-granular control state, normalized so the
    /// currently open estimator window starts at cycle 0. Meaningful at
    /// a window boundary (immediately after a [`LadderGovernor::period_at`]
    /// query landed on a multiple of the window), where the per-cycle
    /// flag counter has just been reset; the pending actuation cycle is
    /// re-based relative to the window start.
    pub fn state(&self) -> GovernorState {
        GovernorState {
            level: self.level,
            clean_windows: self.clean_windows,
            dirty_windows: self.dirty_windows,
            pending: self
                .pending
                .map(|(at, to)| (at.saturating_sub(self.window_start), to)),
        }
    }

    /// Rebuilds a governor mid-flight from a [`GovernorState`] snapshot,
    /// with the open estimator window re-based to start at cycle 0.
    /// Lifetime counters (escalations, de-escalations, safe-mode
    /// entries) restart from zero; behavior from cycle 0 onward is
    /// identical to the snapshotted governor's from its window start.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LadderGovernor::new`].
    pub fn restore(nominal: Picos, config: GovernorConfig, state: GovernorState) -> LadderGovernor {
        let mut g = LadderGovernor::new(nominal, config);
        g.level = state.level;
        g.clean_windows = state.clean_windows;
        g.dirty_windows = state.dirty_windows;
        g.pending = state.pending;
        g
    }

    /// Clears all estimator and ladder state back to nominal.
    pub fn reset(&mut self) {
        let nominal = self.nominal;
        let config = self.config;
        *self = LadderGovernor::new(nominal, config);
    }

    /// One window-close decision: maps the closed window's flag count
    /// to at most one pending level change.
    fn decide(&mut self, close: u64) {
        let flags = self.flags_in_window;
        if self.pending.is_some() {
            // A decision is already in flight (possible only when
            // latency == window - small and the caller jumped); skip.
            return;
        }
        if flags >= self.config.escalate_flags {
            self.clean_windows = 0;
            self.dirty_windows = 0;
            if self.level != GovernorLevel::SafeMode {
                self.pending = Some((close + self.config.latency_cycles, self.level.up()));
            }
        } else if flags <= self.config.deescalate_flags {
            self.dirty_windows = 0;
            self.clean_windows += 1;
            if self.clean_windows >= self.config.hold_windows
                && self.level != GovernorLevel::Nominal
            {
                self.clean_windows = 0;
                self.pending = Some((close + self.config.latency_cycles, self.level.down()));
            }
        } else {
            // Hysteresis dead zone: not clean, not storming.
            self.clean_windows = 0;
            self.dirty_windows += 1;
            if self.dirty_windows >= self.config.deadline_windows
                && self.level != GovernorLevel::Nominal
                && self.level != GovernorLevel::SafeMode
            {
                // Bounded recovery deadline: the level failed to drain
                // the storm in time; stop lingering and escalate.
                self.dirty_windows = 0;
                self.pending = Some((close + self.config.latency_cycles, self.level.up()));
            }
        }
    }

    /// Actuates the pending decision if its cycle has arrived.
    fn actuate_until(&mut self, cycle: u64) {
        let Some((at, to)) = self.pending else { return };
        if cycle < at {
            return;
        }
        self.pending = None;
        let from = self.level;
        if to == from {
            return;
        }
        self.level = to;
        if to > from {
            self.escalations += 1;
            if to == GovernorLevel::SafeMode {
                self.safe_mode_entries += 1;
            }
        } else {
            self.deescalations += 1;
        }
        self.transition = Some(LadderTransition {
            cycle: at,
            from,
            to,
            period: self.period_of(to),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig {
            window: 10,
            escalate_flags: 3,
            deescalate_flags: 0,
            hold_windows: 2,
            deadline_windows: 4,
            latency_cycles: 2,
            ..GovernorConfig::default()
        }
    }

    fn storm(g: &mut LadderGovernor, from: u64, to: u64, flags_per_cycle: u64) {
        for c in from..to {
            let _ = g.period_at(c);
            for _ in 0..flags_per_cycle {
                g.flag_error(c);
            }
        }
    }

    #[test]
    fn stays_nominal_without_flags() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        for c in 0..100 {
            assert_eq!(g.period_at(c), Picos(1000));
        }
        assert_eq!(g.level(), GovernorLevel::Nominal);
        assert_eq!(g.escalations(), 0);
        assert!(g.take_transition().is_none());
    }

    #[test]
    fn storm_escalates_to_safe_mode() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        storm(&mut g, 0, 50, 1);
        // Window closes at 10, 20, 30 … each with 10 flags ≥ 3; each
        // close escalates one level, actuated 2 cycles later.
        assert_eq!(g.level(), GovernorLevel::SafeMode);
        assert_eq!(g.escalations(), 3);
        assert_eq!(g.safe_mode_entries(), 1);
        assert_eq!(g.period_at(50), Picos(1500));
    }

    #[test]
    fn period_never_exceeds_ladder_maximum() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        let max = g.max_period();
        for c in 0..500 {
            let p = g.period_at(c);
            assert!(p <= max, "cycle {c}: {p} > {max}");
            g.flag_error(c);
        }
    }

    #[test]
    fn deescalates_to_nominal_after_flags_cease() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        storm(&mut g, 0, 50, 1);
        assert_eq!(g.level(), GovernorLevel::SafeMode);
        let bound = g.recovery_bound();
        let mut recovered = None;
        for c in 50..50 + bound + 1 {
            let _ = g.period_at(c);
            if g.level() == GovernorLevel::Nominal {
                recovered = Some(c - 50);
                break;
            }
        }
        let took = recovered.expect("must recover within the bound");
        assert!(took <= bound, "{took} > bound {bound}");
        assert_eq!(g.deescalations(), 3);
    }

    #[test]
    fn hysteresis_band_does_not_flap() {
        // 1 flag per window: above deescalate (0), below escalate (3):
        // the dead zone. From nominal, the governor must not move.
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        for c in 0..200 {
            let _ = g.period_at(c);
            if c % 10 == 5 {
                g.flag_error(c);
            }
        }
        assert_eq!(g.level(), GovernorLevel::Nominal);
        assert_eq!(g.escalations(), 0);
    }

    #[test]
    fn deadline_forces_escalation_out_of_the_dead_zone() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        // One storm window lifts it to throttle…
        storm(&mut g, 0, 10, 1);
        let _ = g.period_at(12);
        assert_eq!(g.level(), GovernorLevel::Throttle);
        // …then linger in the dead zone (1 flag per window).
        for c in 13..200 {
            let _ = g.period_at(c);
            if c % 10 == 5 {
                g.flag_error(c);
            }
        }
        // deadline_windows = 4 dead-zone windows at a level escalate it.
        assert!(g.level() > GovernorLevel::Throttle, "{:?}", g.level());
    }

    #[test]
    fn transitions_are_reported_exactly_once() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        let mut seen = Vec::new();
        for c in 0..200 {
            let _ = g.period_at(c);
            if c < 50 {
                g.flag_error(c);
            }
            if let Some(t) = g.take_transition() {
                seen.push(t);
            }
        }
        let ups = seen.iter().filter(|t| t.is_escalation()).count() as u64;
        let downs = seen.len() as u64 - ups;
        assert_eq!(ups, g.escalations());
        assert_eq!(downs, g.deescalations());
        assert!(seen.iter().all(|t| t.period <= g.max_period()));
        // Consecutive transitions chain: each starts where the last
        // ended.
        for pair in seen.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
    }

    #[test]
    fn regressed_query_is_answered_without_rewinding() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        storm(&mut g, 0, 30, 1);
        let level = g.level();
        let p = g.period_of(level);
        // Out-of-order query (release semantics; debug asserts instead).
        if cfg!(not(debug_assertions)) {
            assert_eq!(g.period_at(5), p);
            assert_eq!(g.level(), level);
        }
    }

    #[test]
    fn reset_returns_to_nominal() {
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        storm(&mut g, 0, 50, 1);
        g.reset();
        assert_eq!(g.level(), GovernorLevel::Nominal);
        assert_eq!(g.escalations(), 0);
        assert_eq!(g.period_at(0), Picos(1000));
    }

    #[test]
    fn snapshot_at_a_window_boundary_restores_identical_behavior() {
        // Drive a governor into an interesting mixed state, snapshot at
        // a window boundary, and check the restored copy tracks the
        // original cycle-for-cycle over every input pattern.
        let mut g = LadderGovernor::new(Picos(1000), cfg());
        storm(&mut g, 0, 25, 1); // two storm windows + a partial one
        let _ = g.period_at(30); // land exactly on a window boundary
        let snap = g.state();
        assert_ne!(snap, GovernorState::initial());

        let mut r = LadderGovernor::restore(Picos(1000), cfg(), snap);
        assert_eq!(r.level(), g.level());
        for c in 0..200u64 {
            let flag = c % 7 == 0; // a dead-zone-ish replay pattern
            let pg = g.period_at(30 + c);
            let pr = r.period_at(c);
            assert_eq!(pg, pr, "cycle {c}");
            if flag {
                g.flag_error(30 + c);
                r.flag_error(c);
            }
        }
        assert_eq!(g.level(), r.level());
        assert_eq!(g.state(), r.state());
    }

    #[test]
    fn initial_state_roundtrips() {
        let g = LadderGovernor::new(Picos(1000), cfg());
        assert_eq!(g.state(), GovernorState::initial());
        let r = LadderGovernor::restore(Picos(1000), cfg(), g.state());
        assert_eq!(r.level(), GovernorLevel::Nominal);
        assert_eq!(r.escalations(), 0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_hysteresis_band_is_rejected() {
        let bad = GovernorConfig {
            escalate_flags: 2,
            deescalate_flags: 2,
            ..GovernorConfig::default()
        };
        let _ = LadderGovernor::new(Picos(1000), bad);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn latency_must_fit_in_a_window() {
        let bad = GovernorConfig {
            window: 4,
            latency_cycles: 4,
            ..GovernorConfig::default()
        };
        let _ = LadderGovernor::new(Picos(1000), bad);
    }

    #[test]
    fn level_names_and_indices_are_stable() {
        for (i, l) in GovernorLevel::ALL.iter().enumerate() {
            assert_eq!(l.index() as usize, i);
        }
        assert_eq!(GovernorLevel::SafeMode.name(), "safe-mode");
        assert_eq!(GovernorLevel::Nominal.up(), GovernorLevel::Throttle);
        assert_eq!(GovernorLevel::SafeMode.up(), GovernorLevel::SafeMode);
        assert_eq!(GovernorLevel::Nominal.down(), GovernorLevel::Nominal);
    }
}
