//! # timber-resilience
//!
//! Robustness infrastructure for the TIMBER (DATE 2010) reproduction,
//! in two halves:
//!
//! * **Closed-loop degraded-mode governor** ([`governor`]): the paper's
//!   central error control unit "temporarily reduces clock frequency"
//!   when a flagged error escapes the TB intervals (§4). The open-loop
//!   single-pulse controller handles isolated flags; *sustained* error
//!   storms — resonant droop trains, aging drift — need a closed loop.
//!   [`LadderGovernor`] drives a four-level escalation ladder
//!   (nominal → throttle → deep-throttle → safe-mode) from a windowed
//!   flag-rate estimator with hysteresis, a bounded escalation deadline,
//!   and guaranteed de-escalation back to nominal once flags cease.
//!   [`storms`] generates the stress environments (droop trains, aging
//!   ramps, flag-rate spikes) on top of `timber-variability`.
//!
//! * **Crash-safe hardened executor** ([`executor`], [`checkpoint`]):
//!   the deterministic work-pull scatter discipline shared by the
//!   Monte-Carlo sweep engine and the conformance campaign
//!   ([`scatter_strict`]), plus a hardened variant
//!   ([`run_hardened`]) that isolates every trial with `catch_unwind`,
//!   enforces a per-trial wall-clock watchdog, retries transient
//!   failures with bounded deterministic backoff, quarantines
//!   persistent failures into a ledger instead of aborting the
//!   campaign, and checkpoints completed trials so a killed campaign
//!   resumes to a byte-identical final report.
//!
//! Everything is deterministic: reports and ledgers are bit-identical
//! for any worker-thread count, and resuming from a checkpoint after a
//! kill reproduces exactly the uninterrupted output.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod executor;
pub mod governor;
pub mod retry;
pub mod storms;

pub use checkpoint::{
    read_checkpoint, read_checkpoint_counting, read_journal, scan_log, CheckpointWriter,
    JournalWriter, ScanStats,
};
pub use executor::{
    resolve_threads, run_hardened, scatter_strict, FailureKind, HardenedOutcome, HardenedSpec,
    QuarantineEntry, TrialJob,
};
pub use governor::{
    GovernorConfig, GovernorLevel, GovernorState, LadderGovernor, LadderTransition,
};
pub use retry::RetryPolicy;
pub use storms::StormScenario;

#[cfg(test)]
mod props;
