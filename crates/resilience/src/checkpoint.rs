//! Crash-safe trial checkpointing and content-keyed journalling.
//!
//! The format is an append-only line log: each completed record is one
//! `"{key}\t{payload}\n"` line, flushed as it is written. Payloads
//! are the record's canonical single-line JSON, stored *verbatim* — on
//! resume the final report is assembled from these exact strings,
//! which is what makes a killed-and-resumed campaign byte-identical to
//! an uninterrupted one.
//!
//! A kill can truncate at most the final line (appends are sequential
//! and flushed per line); the readers therefore tolerate — and
//! silently drop — a last line with no trailing newline or a malformed
//! prefix. Everything before it is intact by construction.
//!
//! Two keyspaces share the format:
//!
//! * [`CheckpointWriter`] / [`read_checkpoint`] key records by *trial
//!   index* (the soak campaign's resume log);
//! * [`JournalWriter`] / [`read_journal`] key records by an arbitrary
//!   single-line string — the serve daemon uses content-address hex
//!   digests, so a restarted daemon re-answers any previously computed
//!   request from the journal without re-evaluating it.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Appends completed-trial records to a checkpoint file, one flushed
/// line per trial.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
}

impl CheckpointWriter {
    /// Opens `path` for appending (created if absent). Existing records
    /// are preserved — pass the same path on `--resume`.
    pub fn append(path: &Path) -> std::io::Result<CheckpointWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(CheckpointWriter {
            out: BufWriter::new(file),
        })
    }

    /// Records trial `index` with its canonical single-line payload and
    /// flushes so a kill cannot lose it.
    ///
    /// # Panics
    ///
    /// Panics if `payload` contains a newline or tab (it must be the
    /// trial's canonical single-line JSON).
    pub fn record(&mut self, index: usize, payload: &str) -> std::io::Result<()> {
        assert!(
            !payload.contains('\n') && !payload.contains('\t'),
            "checkpoint payloads must be single-line and tab-free"
        );
        writeln!(self.out, "{index}\t{payload}")?;
        self.out.flush()
    }
}

/// Appends content-keyed records to a journal file, one flushed line
/// per record. Same on-disk discipline as [`CheckpointWriter`], but the
/// key is an arbitrary single-line string (the serve daemon writes
/// cache-key hex digests).
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Opens `path` for appending (created if absent). Existing records
    /// are preserved — pass the same path on `--resume`.
    pub fn append(path: &Path) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter {
            out: BufWriter::new(file),
        })
    }

    /// Records `key -> payload` and flushes so a kill cannot lose it.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `payload` contains a newline or tab (records
    /// must stay single-line so a torn append damages at most itself).
    pub fn record(&mut self, key: &str, payload: &str) -> std::io::Result<()> {
        assert!(
            !key.contains('\n') && !key.contains('\t') && !key.is_empty(),
            "journal keys must be non-empty, single-line and tab-free"
        );
        assert!(
            !payload.contains('\n') && !payload.contains('\t'),
            "journal payloads must be single-line and tab-free"
        );
        writeln!(self.out, "{key}\t{payload}")?;
        self.out.flush()
    }
}

/// What a log scan dropped: the evidence behind the
/// `journal_torn_lines` telemetry counter. Drops are tolerated, never
/// fatal — but they are *counted*, so bit-rot and torn appends surface
/// in `{"op":"stats"}` and the soak/serve reports instead of vanishing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// A non-empty unterminated tail was dropped (a kill tore the
    /// final append mid-line).
    pub torn_tail: bool,
    /// Complete lines dropped for having no tab separator or an empty
    /// key (cannot be produced by the writers; evidence of corruption).
    pub malformed: usize,
}

impl ScanStats {
    /// Total dropped lines (torn tail plus malformed), the value the
    /// `journal_torn_lines` counter accumulates.
    pub fn dropped(&self) -> u64 {
        self.malformed as u64 + u64::from(self.torn_tail)
    }
}

/// Reads an append-only log back as complete `(key, payload)` records
/// in file order, counting what it drops. The unterminated tail (a
/// torn final append) and any malformed complete line are skipped
/// rather than fatal: the only writers are the `record` methods, so
/// they can't occur in practice, and a resume should never be
/// scuttled by one stray line — but each drop lands in [`ScanStats`].
pub fn scan_log(path: &Path) -> std::io::Result<(Vec<(String, String)>, ScanStats)> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), ScanStats::default()))
        }
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut stats = ScanStats::default();
    let mut rest = text.as_str();
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        match line.split_once('\t') {
            Some((key, payload)) if !key.is_empty() => {
                records.push((key.to_owned(), payload.to_owned()));
            }
            _ => stats.malformed += 1,
        }
    }
    // `rest` is now the unterminated tail, if any: a torn final append.
    stats.torn_tail = !rest.is_empty();
    Ok((records, stats))
}

/// Reads a checkpoint file back as `index -> payload`.
///
/// Returns an empty map if the file does not exist. A torn final line
/// (kill mid-append) is dropped; a later record for the same index wins
/// (harmless — payloads are deterministic, so duplicates are equal).
pub fn read_checkpoint(path: &Path) -> std::io::Result<BTreeMap<usize, String>> {
    Ok(read_checkpoint_counting(path)?.0)
}

/// [`read_checkpoint`] plus the [`ScanStats`] of what was dropped.
pub fn read_checkpoint_counting(
    path: &Path,
) -> std::io::Result<(BTreeMap<usize, String>, ScanStats)> {
    let (records, mut stats) = scan_log(path)?;
    let mut map = BTreeMap::new();
    for (key, payload) in records {
        match key.parse::<usize>() {
            Ok(i) => {
                map.insert(i, payload);
            }
            Err(_) => stats.malformed += 1,
        }
    }
    Ok((map, stats))
}

/// Reads a journal file back as `(key, payload)` records in append
/// order (a later record for the same key should win — replay them in
/// order). Returns an empty list if the file does not exist; a torn
/// final line is dropped.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<(String, String)>> {
    Ok(scan_log(path)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("timber-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records_in_index_order() {
        let path = tmp("round");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(2, r#"{"trial":2}"#).unwrap();
            w.record(0, r#"{"trial":0}"#).unwrap();
            w.record(1, r#"{"trial":1}"#).unwrap();
        }
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(
            map.into_iter().collect::<Vec<_>>(),
            vec![
                (0, r#"{"trial":0}"#.to_owned()),
                (1, r#"{"trial":1}"#.to_owned()),
                (2, r#"{"trial":2}"#.to_owned()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_checkpoint(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn");
        std::fs::write(&path, "0\t{\"a\":1}\n1\t{\"b\":2}\n2\t{\"tru").unwrap();
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&0], "{\"a\":1}");
        assert_eq!(map[&1], "{\"b\":2}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_preserves_existing_records() {
        let path = tmp("append");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(0, "a").unwrap();
        }
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(1, "b").unwrap();
        }
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(map.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn multiline_payloads_are_rejected() {
        let path = tmp("reject");
        let _ = std::fs::remove_file(&path);
        let mut w = CheckpointWriter::append(&path).unwrap();
        let _ = w.record(0, "bad\npayload");
    }

    #[test]
    fn journal_round_trips_in_append_order() {
        let path = tmp("journal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append(&path).unwrap();
            w.record("cafe01", r#"{"a":1}"#).unwrap();
            w.record("beef02", r#"{"b":2}"#).unwrap();
            w.record("cafe01", r#"{"a":1}"#).unwrap(); // duplicate key
        }
        let records = read_journal(&path).unwrap();
        assert_eq!(
            records,
            vec![
                ("cafe01".to_owned(), r#"{"a":1}"#.to_owned()),
                ("beef02".to_owned(), r#"{"b":2}"#.to_owned()),
                ("cafe01".to_owned(), r#"{"a":1}"#.to_owned()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_tolerates_torn_final_line() {
        let path = tmp("journal-torn");
        std::fs::write(&path, "aa\t{\"x\":1}\nbb\t{\"y\":2}\ncc\t{\"to").unwrap();
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], ("bb".to_owned(), "{\"y\":2}".to_owned()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_missing_file_reads_empty() {
        let path = tmp("journal-missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_journal(&path).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn journal_rejects_empty_keys() {
        let path = tmp("journal-reject");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::append(&path).unwrap();
        let _ = w.record("", "payload");
    }
}
