//! Crash-safe trial checkpointing.
//!
//! The format is an append-only line log: each completed trial is one
//! `"{index}\t{payload}\n"` line, flushed as it is written. Payloads
//! are the trial's canonical single-line JSON, stored *verbatim* — on
//! resume the final report is assembled from these exact strings in
//! index order, which is what makes a killed-and-resumed campaign
//! byte-identical to an uninterrupted one.
//!
//! A kill can truncate at most the final line (appends are sequential
//! and flushed per line); [`read_checkpoint`] therefore tolerates — and
//! silently drops — a last line with no trailing newline or a malformed
//! prefix. Everything before it is intact by construction.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Appends completed-trial records to a checkpoint file, one flushed
/// line per trial.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
}

impl CheckpointWriter {
    /// Opens `path` for appending (created if absent). Existing records
    /// are preserved — pass the same path on `--resume`.
    pub fn append(path: &Path) -> std::io::Result<CheckpointWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(CheckpointWriter {
            out: BufWriter::new(file),
        })
    }

    /// Records trial `index` with its canonical single-line payload and
    /// flushes so a kill cannot lose it.
    ///
    /// # Panics
    ///
    /// Panics if `payload` contains a newline or tab (it must be the
    /// trial's canonical single-line JSON).
    pub fn record(&mut self, index: usize, payload: &str) -> std::io::Result<()> {
        assert!(
            !payload.contains('\n') && !payload.contains('\t'),
            "checkpoint payloads must be single-line and tab-free"
        );
        writeln!(self.out, "{index}\t{payload}")?;
        self.out.flush()
    }
}

/// Reads a checkpoint file back as `index -> payload`.
///
/// Returns an empty map if the file does not exist. A torn final line
/// (kill mid-append) is dropped; a later record for the same index wins
/// (harmless — payloads are deterministic, so duplicates are equal).
pub fn read_checkpoint(path: &Path) -> std::io::Result<BTreeMap<usize, String>> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    }
    let mut map = BTreeMap::new();
    let mut rest = text.as_str();
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        if let Some((idx, payload)) = line.split_once('\t') {
            if let Ok(i) = idx.parse::<usize>() {
                map.insert(i, payload.to_owned());
            }
        }
        // Malformed complete lines are skipped rather than fatal: the
        // only writer is `record`, so they can't occur in practice, and
        // a resume should never be scuttled by one stray line.
    }
    // `rest` is now the unterminated tail, if any: a torn final append.
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("timber-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records_in_index_order() {
        let path = tmp("round");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(2, r#"{"trial":2}"#).unwrap();
            w.record(0, r#"{"trial":0}"#).unwrap();
            w.record(1, r#"{"trial":1}"#).unwrap();
        }
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(
            map.into_iter().collect::<Vec<_>>(),
            vec![
                (0, r#"{"trial":0}"#.to_owned()),
                (1, r#"{"trial":1}"#.to_owned()),
                (2, r#"{"trial":2}"#.to_owned()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_checkpoint(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn");
        std::fs::write(&path, "0\t{\"a\":1}\n1\t{\"b\":2}\n2\t{\"tru").unwrap();
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&0], "{\"a\":1}");
        assert_eq!(map[&1], "{\"b\":2}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_preserves_existing_records() {
        let path = tmp("append");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(0, "a").unwrap();
        }
        {
            let mut w = CheckpointWriter::append(&path).unwrap();
            w.record(1, "b").unwrap();
        }
        let map = read_checkpoint(&path).unwrap();
        assert_eq!(map.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn multiline_payloads_are_rejected() {
        let path = tmp("reject");
        let _ = std::fs::remove_file(&path);
        let mut w = CheckpointWriter::append(&path).unwrap();
        let _ = w.record(0, "bad\npayload");
    }
}
