//! # timber-sta
//!
//! Static timing analysis for the TIMBER (DATE 2010) reproduction.
//!
//! Provides max-delay (setup) and min-delay (hold) analysis over a
//! `timber-netlist` design, exact critical-path enumeration in decreasing
//! delay order, and the flip-flop endpoint/startpoint classification that
//! drives the paper's Fig. 1 ("critical path distribution between
//! flip-flops") and the selection of which flops to replace with TIMBER
//! elements.
//!
//! ## Top-c% paths
//!
//! The paper replaces "all flip-flops terminating at the top c% critical
//! paths" for a checking period of c% of the clock period. We interpret a
//! *top-c% path* as a path whose delay is at least `(1 - c/100) ×
//! T_clk`: exactly the paths that can violate timing when dynamic
//! variability inflates delay by up to the recovered margin, and the same
//! paths the checking period must cover. This interpretation is recorded
//! in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use timber_netlist::{ripple_carry_adder, CellLibrary, Picos};
//! use timber_sta::{ClockConstraint, TimingAnalysis};
//!
//! # fn main() -> Result<(), timber_netlist::NetlistError> {
//! let lib = CellLibrary::standard();
//! let nl = ripple_carry_adder(&lib, 8)?;
//! let clk = ClockConstraint::with_period(Picos(1200));
//! let sta = TimingAnalysis::run(&nl, &clk);
//! let wp = sta.worst_path();
//! assert_eq!(wp.delay, sta.worst_arrival());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod derate;
pub mod endpoints;
pub mod histogram;
pub mod hold;
pub mod paths;
pub mod report;

pub use analysis::{ClockConstraint, DelayCalculator, LibraryDelays, TimingAnalysis};
pub use derate::{derate_sweep, DeratePoint, DeratedDelays};
pub use endpoints::{classify_flops, endpoint_arrivals, FlopTimingClass, PathDistribution};
pub use histogram::SlackHistogram;
pub use hold::{HoldAnalysis, PaddingPlan};
pub use paths::{PathEndpoint, PathQuery, TimingPath};
pub use report::{timing_report, TimingSummary};
