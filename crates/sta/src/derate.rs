//! What-if derating: re-running timing with per-instance delay scale
//! factors.
//!
//! Dynamic-variability studies need "what does the timing look like
//! when region X slows by 6%?" answers. [`DeratedDelays`] wraps any
//! base [`DelayCalculator`] with a global factor plus per-instance
//! overrides, and [`derate_sweep`] measures how the worst slack
//! degrades as a global derating factor grows — the static-timing view
//! of a droop event.

use std::collections::HashMap;

use timber_netlist::{InstId, Netlist, Picos};

use crate::analysis::{ClockConstraint, DelayCalculator, LibraryDelays, TimingAnalysis};

/// A [`DelayCalculator`] applying a global derating factor and optional
/// per-instance overrides on top of a base calculator.
#[derive(Debug, Clone)]
pub struct DeratedDelays<B = LibraryDelays> {
    base: B,
    global: f64,
    overrides: HashMap<InstId, f64>,
}

impl DeratedDelays<LibraryDelays> {
    /// A derating over the plain library delays.
    ///
    /// # Panics
    ///
    /// Panics if `global` is not positive.
    pub fn new(global: f64) -> DeratedDelays<LibraryDelays> {
        DeratedDelays::over(LibraryDelays, global)
    }
}

impl<B: DelayCalculator> DeratedDelays<B> {
    /// Wraps an arbitrary base calculator.
    ///
    /// # Panics
    ///
    /// Panics if `global` is not positive.
    pub fn over(base: B, global: f64) -> DeratedDelays<B> {
        assert!(global > 0.0, "derating factor must be positive");
        DeratedDelays {
            base,
            global,
            overrides: HashMap::new(),
        }
    }

    /// Sets a per-instance factor (replacing, not stacking with, the
    /// global factor for that instance).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_instance(&mut self, inst: InstId, factor: f64) {
        assert!(factor > 0.0, "derating factor must be positive");
        self.overrides.insert(inst, factor);
    }

    fn factor_for(&self, inst: InstId) -> f64 {
        self.overrides.get(&inst).copied().unwrap_or(self.global)
    }
}

impl<B: DelayCalculator> DelayCalculator for DeratedDelays<B> {
    fn max_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos {
        self.base
            .max_arc_delay(netlist, inst, pin)
            .scale(self.factor_for(inst))
    }

    fn min_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos {
        // Hold analysis must not benefit from slow-down assumptions:
        // min delays keep the base value when derating ≥ 1.
        let base = self.base.min_arc_delay(netlist, inst, pin);
        let f = self.factor_for(inst);
        if f >= 1.0 {
            base
        } else {
            base.scale(f)
        }
    }
}

/// One point of a derating sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeratePoint {
    /// Global derating factor applied.
    pub factor: f64,
    /// Worst endpoint slack at that factor.
    pub worst_slack: Picos,
    /// Number of failing (negative-slack) flop endpoints.
    pub failing_endpoints: usize,
}

/// Sweeps a global derating factor and reports the slack degradation —
/// the STA view of how much dynamic variability a design absorbs before
/// violating, and hence how much margin TIMBER must recover.
pub fn derate_sweep(
    netlist: &Netlist,
    constraint: &ClockConstraint,
    factors: &[f64],
) -> Vec<DeratePoint> {
    factors
        .iter()
        .map(|&factor| {
            let delays = DeratedDelays::new(factor);
            let sta = TimingAnalysis::run_with(netlist, constraint, &delays);
            let failing = netlist
                .flop_ids()
                .filter(|&f| {
                    sta.endpoint_slack(sta.arrival(netlist.flop(f).d()))
                        .is_negative()
                })
                .count();
            DeratePoint {
                factor,
                worst_slack: sta.worst_slack(),
                failing_endpoints: failing,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use timber_netlist::{ripple_carry_adder, CellLibrary};

    fn adder() -> Netlist {
        ripple_carry_adder(&CellLibrary::standard(), 8).unwrap()
    }

    #[test]
    fn global_derating_scales_arrivals() {
        let nl = adder();
        let clk = ClockConstraint::with_period(Picos(2000));
        let base = TimingAnalysis::run(&nl, &clk);
        let slow = TimingAnalysis::run_with(&nl, &clk, &DeratedDelays::new(1.10));
        // All combinational delay scales by 1.10; clk_to_q does not.
        let base_comb = base.worst_arrival() - clk.clk_to_q;
        let slow_comb = slow.worst_arrival() - clk.clk_to_q;
        let ratio = slow_comb.as_ps() as f64 / base_comb.as_ps() as f64;
        assert!((ratio - 1.10).abs() < 0.005, "ratio {ratio}");
    }

    #[test]
    fn per_instance_override_beats_global() {
        let nl = adder();
        let clk = ClockConstraint::with_period(Picos(2000));
        let mut d = DeratedDelays::new(1.0);
        // Slow one carry-chain gate massively (instance 1 is the bit-0
        // fa_carry, which sits on the critical path).
        d.set_instance(InstId(1), 3.0);
        let sta = TimingAnalysis::run_with(&nl, &clk, &d);
        let base = TimingAnalysis::run(&nl, &clk);
        assert!(sta.worst_arrival() > base.worst_arrival());
        // Other instances keep library delays.
        assert_eq!(
            d.max_arc_delay(&nl, InstId(2), 0),
            LibraryDelays.max_arc_delay(&nl, InstId(2), 0)
        );
    }

    #[test]
    fn hold_delays_never_relaxed_by_slowdown() {
        let nl = adder();
        let d = DeratedDelays::new(1.2);
        assert_eq!(
            d.min_arc_delay(&nl, InstId(0), 0),
            LibraryDelays.min_arc_delay(&nl, InstId(0), 0),
            "slow-down must not be credited to hold"
        );
        let d = DeratedDelays::new(0.9);
        assert!(
            d.min_arc_delay(&nl, InstId(0), 0) < LibraryDelays.min_arc_delay(&nl, InstId(0), 0),
            "speed-up must tighten hold"
        );
    }

    #[test]
    fn sweep_degrades_monotonically() {
        let nl = adder();
        // Clock with little margin (10%, just covering setup) so
        // derating causes failures.
        let probe = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(100_000)));
        let period = probe.worst_arrival().scale(1.10);
        let clk = ClockConstraint::with_period(period);
        let points = derate_sweep(&nl, &clk, &[1.0, 1.05, 1.10, 1.15, 1.20]);
        for w in points.windows(2) {
            assert!(w[1].worst_slack <= w[0].worst_slack);
            assert!(w[1].failing_endpoints >= w[0].failing_endpoints);
        }
        assert_eq!(points[0].failing_endpoints, 0);
        assert!(points.last().unwrap().failing_endpoints > 0);
    }

    #[test]
    #[should_panic(expected = "derating factor must be positive")]
    fn factor_validated() {
        let _ = DeratedDelays::new(0.0);
    }
}
