//! Human-readable timing reports (WNS/TNS, worst paths, slack
//! histogram) — the summary a timing signoff run prints.

use timber_netlist::{Netlist, Picos};

use crate::analysis::TimingAnalysis;
use crate::histogram::SlackHistogram;
use crate::paths::{enumerate_paths, PathEndpoint, PathQuery, PathStart};

/// Aggregate timing quality metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    /// Worst negative slack (the design's worst endpoint slack; may be
    /// positive when timing is met).
    pub wns: Picos,
    /// Total negative slack: sum of all failing endpoint slacks.
    pub tns: Picos,
    /// Failing flop endpoints.
    pub failing_endpoints: usize,
    /// Total flop endpoints.
    pub total_endpoints: usize,
}

impl TimingSummary {
    /// Computes WNS/TNS over the design's flop endpoints.
    pub fn measure(sta: &TimingAnalysis<'_>, netlist: &Netlist) -> TimingSummary {
        let mut wns = Picos::MAX;
        let mut tns = Picos::ZERO;
        let mut failing = 0usize;
        let mut total = 0usize;
        for f in netlist.flop_ids() {
            let arrival = sta.arrival(netlist.flop(f).d());
            if arrival == Picos::MIN {
                continue;
            }
            total += 1;
            let slack = sta.endpoint_slack(arrival);
            wns = wns.min(slack);
            if slack.is_negative() {
                failing += 1;
                tns += slack;
            }
        }
        if total == 0 {
            wns = Picos::ZERO;
        }
        TimingSummary {
            wns,
            tns,
            failing_endpoints: failing,
            total_endpoints: total,
        }
    }

    /// True when every endpoint meets timing.
    pub fn met(&self) -> bool {
        self.failing_endpoints == 0
    }
}

/// Renders a full timing report: summary, top-`top_n` critical paths,
/// and an endpoint slack histogram.
pub fn timing_report(netlist: &Netlist, sta: &TimingAnalysis<'_>, top_n: usize) -> String {
    let summary = TimingSummary::measure(sta, netlist);
    let mut out = String::new();
    out.push_str(&format!(
        "Timing report for {:?} (period {}, setup {})\n",
        netlist.name(),
        sta.constraint().period,
        sta.constraint().setup
    ));
    out.push_str(&format!(
        "  WNS {}   TNS {}   failing {}/{} endpoints   [{}]\n\n",
        summary.wns,
        summary.tns,
        summary.failing_endpoints,
        summary.total_endpoints,
        if summary.met() { "MET" } else { "VIOLATED" }
    ));

    out.push_str(&format!("Top {top_n} critical paths:\n"));
    let paths = enumerate_paths(
        sta,
        &PathQuery {
            max_paths: top_n,
            min_delay: Picos::MIN,
        },
    );
    for (i, p) in paths.iter().enumerate() {
        let start = match p.start {
            PathStart::PrimaryInput(net) => format!("PI {}", netlist.net(net).name()),
            PathStart::FlopQ(f) => format!("{}/Q", netlist.flop(f).name()),
        };
        let end = match p.end {
            PathEndpoint::FlopD(f) => format!("{}/D", netlist.flop(f).name()),
            PathEndpoint::PrimaryOutput(net) => format!("PO {}", netlist.net(net).name()),
        };
        out.push_str(&format!(
            "  #{:<3} {:>7}  slack {:>7}  {:>3} gates  {} -> {}\n",
            i + 1,
            p.delay.to_string(),
            p.slack(sta).to_string(),
            p.length(),
            start,
            end
        ));
    }

    out.push_str("\nEndpoint slack histogram:\n");
    out.push_str(&SlackHistogram::measure(sta, netlist, 8).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ClockConstraint;
    use timber_netlist::{ripple_carry_adder, CellLibrary};

    fn sta_for(period: i64) -> (Netlist, ClockConstraint) {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 8).unwrap();
        (nl, ClockConstraint::with_period(Picos(period)))
    }

    #[test]
    fn summary_met_when_relaxed() {
        let (nl, clk) = sta_for(2000);
        let sta = TimingAnalysis::run(&nl, &clk);
        let s = TimingSummary::measure(&sta, &nl);
        assert!(s.met());
        assert_eq!(s.failing_endpoints, 0);
        assert_eq!(s.tns, Picos::ZERO);
        assert!(s.wns > Picos::ZERO);
        assert_eq!(s.total_endpoints, nl.flop_count());
    }

    #[test]
    fn summary_violated_when_overclocked() {
        let (nl, clk) = sta_for(200);
        let sta = TimingAnalysis::run(&nl, &clk);
        let s = TimingSummary::measure(&sta, &nl);
        assert!(!s.met());
        assert!(s.failing_endpoints > 0);
        assert!(s.tns.is_negative());
        // wns is the minimum slack, so it is at most the mean negative
        // slack tns / failing.
        assert!(s.wns <= s.tns / s.failing_endpoints as i64);
        assert!(s.wns.is_negative());
        // TNS is at least as negative as WNS.
        assert!(s.tns <= s.wns);
    }

    #[test]
    fn report_contains_paths_and_histogram() {
        let (nl, clk) = sta_for(500);
        let sta = TimingAnalysis::run(&nl, &clk);
        let text = timing_report(&nl, &sta, 5);
        assert!(text.contains("WNS"));
        assert!(text.contains("Top 5 critical paths"));
        assert!(text.contains("/D"));
        assert!(text.contains("Endpoint slack histogram"));
        // One "slack" column entry per printed path (histogram bars
        // also use '#', and the histogram heading contains "slack",
        // so count the two-space-delimited column marker).
        assert_eq!(text.matches("  slack ").count(), 5);
    }
}
