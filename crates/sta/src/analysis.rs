//! Max-delay (setup) arrival-time propagation and slack computation.

use timber_netlist::{Driver, InstId, NetId, Netlist, NetlistError, Picos, Sink};

/// Clock constraint applied to a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockConstraint {
    /// Clock period.
    pub period: Picos,
    /// Flip-flop setup time.
    pub setup: Picos,
    /// Flip-flop hold time.
    pub hold: Picos,
    /// Flip-flop clock-to-Q delay.
    pub clk_to_q: Picos,
}

impl ClockConstraint {
    /// A constraint with the given period and default cell timing
    /// (setup 30 ps, hold 20 ps, clk-to-Q 40 ps), representative of the
    /// standard library's flip-flop.
    pub fn with_period(period: Picos) -> ClockConstraint {
        ClockConstraint {
            period,
            setup: Picos(30),
            hold: Picos(20),
            clk_to_q: Picos(40),
        }
    }

    /// The latest permissible data arrival at a flop D pin.
    pub fn required_arrival(&self) -> Picos {
        self.period - self.setup
    }
}

/// Supplies per-arc delays to the analysis.
///
/// The default implementation, [`LibraryDelays`], reads worst-case arc
/// delays straight from the cell library; variability experiments derate
/// through a custom implementation.
pub trait DelayCalculator {
    /// Max-delay for the arc from `pin` of `inst` to its output.
    fn max_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos;

    /// Min-delay for the same arc (used by hold analysis). Defaults to
    /// the max delay, which is conservative for setup and optimistic for
    /// hold; [`LibraryDelays`] overrides with the best arc.
    fn min_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos {
        self.max_arc_delay(netlist, inst, pin)
    }
}

/// Delay calculator that uses library arc delays unmodified.
#[derive(Debug, Clone, Copy, Default)]
pub struct LibraryDelays;

impl DelayCalculator for LibraryDelays {
    fn max_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos {
        let cell = netlist.library().cell(netlist.instance(inst).cell());
        cell.arc(pin).worst()
    }

    fn min_arc_delay(&self, netlist: &Netlist, inst: InstId, pin: usize) -> Picos {
        let cell = netlist.library().cell(netlist.instance(inst).cell());
        cell.arc(pin).best()
    }
}

/// Result of a max-delay timing analysis.
///
/// Arrival times are measured from the capturing clock edge at time 0:
/// primary inputs arrive at 0, flop Q pins at `clk_to_q`.
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'nl> {
    netlist: &'nl Netlist,
    constraint: ClockConstraint,
    /// Max-delay for every instance arc, indexed by instance then pin.
    /// Cached so path enumeration sees exactly the delays the arrival
    /// times were computed with, even for stochastic calculators.
    arc_delays: Vec<Vec<Picos>>,
    /// Max arrival time at each net.
    arrival: Vec<Picos>,
    /// Max remaining delay from each net to any timing endpoint.
    downstream: Vec<Picos>,
    /// For each net driven by an instance, the input pin realising the
    /// max arrival (for path backtracking).
    critical_pin: Vec<Option<usize>>,
    topo: Vec<InstId>,
}

impl<'nl> TimingAnalysis<'nl> {
    /// Runs analysis with library delays.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop; validated
    /// netlists never do. Use [`TimingAnalysis::try_run`] for netlists
    /// of unknown provenance.
    pub fn run(netlist: &'nl Netlist, constraint: &ClockConstraint) -> TimingAnalysis<'nl> {
        TimingAnalysis::run_with(netlist, constraint, &LibraryDelays)
    }

    /// Runs analysis with a caller-supplied delay calculator.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop (see
    /// [`TimingAnalysis::try_run_with`]).
    pub fn run_with(
        netlist: &'nl Netlist,
        constraint: &ClockConstraint,
        delays: &dyn DelayCalculator,
    ) -> TimingAnalysis<'nl> {
        TimingAnalysis::try_run_with(netlist, constraint, delays)
            .expect("validated netlist must be acyclic")
    }

    /// Runs analysis with library delays, reporting a combinational
    /// loop (with its full cycle path) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// logic is cyclic.
    pub fn try_run(
        netlist: &'nl Netlist,
        constraint: &ClockConstraint,
    ) -> Result<TimingAnalysis<'nl>, NetlistError> {
        TimingAnalysis::try_run_with(netlist, constraint, &LibraryDelays)
    }

    /// Runs analysis with a caller-supplied delay calculator, reporting
    /// a combinational loop instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// logic is cyclic.
    pub fn try_run_with(
        netlist: &'nl Netlist,
        constraint: &ClockConstraint,
        delays: &dyn DelayCalculator,
    ) -> Result<TimingAnalysis<'nl>, NetlistError> {
        let topo = timber_netlist::topo_order(netlist)?;
        let n = netlist.net_count();
        let mut arrival = vec![Picos::ZERO; n];
        let mut critical_pin = vec![None; n];

        // Snapshot arc delays once.
        let arc_delays: Vec<Vec<Picos>> = netlist
            .instance_ids()
            .map(|inst_id| {
                (0..netlist.instance(inst_id).inputs().len())
                    .map(|pin| delays.max_arc_delay(netlist, inst_id, pin))
                    .collect()
            })
            .collect();

        // Startpoint arrivals.
        for net_id in netlist.net_ids() {
            arrival[net_id.0 as usize] = match netlist.net(net_id).driver() {
                Some(Driver::PrimaryInput) => Picos::ZERO,
                Some(Driver::FlopQ(_)) => constraint.clk_to_q,
                _ => Picos::MIN,
            };
        }

        // Forward propagation.
        for &inst_id in &topo {
            let inst = netlist.instance(inst_id);
            let mut best = Picos::MIN;
            let mut best_pin = None;
            for (pin, &input) in inst.inputs().iter().enumerate() {
                let in_arr = arrival[input.0 as usize];
                if in_arr == Picos::MIN {
                    continue;
                }
                let t = in_arr + arc_delays[inst_id.0 as usize][pin];
                if t > best {
                    best = t;
                    best_pin = Some(pin);
                }
            }
            let out = inst.output().0 as usize;
            arrival[out] = best;
            critical_pin[out] = best_pin;
        }

        // Backward propagation of max downstream delay to any endpoint
        // (flop D pin or primary output).
        let mut downstream = vec![Picos::MIN; n];
        for net_id in netlist.net_ids() {
            let is_endpoint = netlist
                .net(net_id)
                .fanout()
                .iter()
                .any(|s| matches!(s, Sink::FlopD(_) | Sink::PrimaryOutput));
            if is_endpoint {
                downstream[net_id.0 as usize] = Picos::ZERO;
            }
        }
        for &inst_id in topo.iter().rev() {
            let inst = netlist.instance(inst_id);
            let out_down = downstream[inst.output().0 as usize];
            if out_down == Picos::MIN {
                continue;
            }
            for (pin, &input) in inst.inputs().iter().enumerate() {
                let through = out_down + arc_delays[inst_id.0 as usize][pin];
                let slot = &mut downstream[input.0 as usize];
                if through > *slot {
                    *slot = through;
                }
            }
        }

        Ok(TimingAnalysis {
            netlist,
            constraint: *constraint,
            arc_delays,
            arrival,
            downstream,
            critical_pin,
            topo,
        })
    }

    /// The design under analysis.
    pub fn netlist(&self) -> &'nl Netlist {
        self.netlist
    }

    /// Cached max-delay of an instance arc as used by this analysis.
    pub fn arc_delay(&self, inst: InstId, pin: usize) -> Picos {
        self.arc_delays[inst.0 as usize][pin]
    }

    /// The constraint the analysis was run against.
    pub fn constraint(&self) -> &ClockConstraint {
        &self.constraint
    }

    /// Max arrival time at a net. `Picos::MIN` for unreachable nets.
    pub fn arrival(&self, net: NetId) -> Picos {
        self.arrival[net.0 as usize]
    }

    /// Max delay from `net` to any timing endpoint (flop D or primary
    /// output). `Picos::MIN` if no endpoint is reachable.
    pub fn downstream(&self, net: NetId) -> Picos {
        self.downstream[net.0 as usize]
    }

    /// Input pin realising the max arrival at an instance-driven net.
    pub fn critical_pin(&self, net: NetId) -> Option<usize> {
        self.critical_pin[net.0 as usize]
    }

    /// Slack of a flop D endpoint: `required_arrival - (arrival + setup
    /// margin already folded into required)`.
    pub fn endpoint_slack(&self, arrival: Picos) -> Picos {
        self.constraint.required_arrival() - arrival
    }

    /// Largest arrival over all nets (the design's critical delay,
    /// excluding setup).
    pub fn worst_arrival(&self) -> Picos {
        self.arrival
            .iter()
            .copied()
            .filter(|&a| a != Picos::MIN)
            .fold(Picos::ZERO, Picos::max)
    }

    /// Worst (smallest) endpoint slack in the design.
    pub fn worst_slack(&self) -> Picos {
        self.endpoint_slack(self.worst_arrival())
    }

    /// Topological instance order computed during analysis (exposed for
    /// reuse by incremental passes; C-INTERMEDIATE).
    pub fn topo(&self) -> &[InstId] {
        &self.topo
    }

    /// The single worst path in the design (see [`crate::paths`]).
    pub fn worst_path(&self) -> crate::paths::TimingPath {
        crate::paths::worst_path(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timber_netlist::{CellLibrary, NetlistBuilder};

    fn chain(n: usize) -> (Netlist, Vec<NetId>) {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let mut q = b.flop("f_in", a);
        let mut nets = vec![q];
        for _ in 0..n {
            q = b.gate("buf", &[q]).unwrap();
            nets.push(q);
        }
        let out = b.flop("f_out", q);
        b.output("o", out);
        (b.finish().unwrap(), nets)
    }

    #[test]
    fn arrival_accumulates_along_chain() {
        let (nl, nets) = chain(3);
        let clk = ClockConstraint::with_period(Picos(1000));
        let sta = TimingAnalysis::run(&nl, &clk);
        // buf delay is 28ps; flop Q starts at clk_to_q = 40.
        assert_eq!(sta.arrival(nets[0]), Picos(40));
        assert_eq!(sta.arrival(nets[1]), Picos(68));
        assert_eq!(sta.arrival(nets[2]), Picos(96));
        assert_eq!(sta.arrival(nets[3]), Picos(124));
        assert_eq!(sta.worst_arrival(), Picos(124));
    }

    #[test]
    fn downstream_mirrors_arrival() {
        let (nl, nets) = chain(3);
        let clk = ClockConstraint::with_period(Picos(1000));
        let sta = TimingAnalysis::run(&nl, &clk);
        // From flop Q, three buffers remain to the endpoint.
        assert_eq!(sta.downstream(nets[0]), Picos(84));
        assert_eq!(sta.downstream(nets[3]), Picos(0));
    }

    #[test]
    fn slack_uses_setup() {
        let (nl, _) = chain(1);
        let clk = ClockConstraint::with_period(Picos(200));
        let sta = TimingAnalysis::run(&nl, &clk);
        // arrival = 40 + 28 = 68; required = 200 - 30 = 170.
        assert_eq!(sta.worst_slack(), Picos(102));
    }

    #[test]
    fn negative_slack_detected() {
        let (nl, _) = chain(10);
        let clk = ClockConstraint::with_period(Picos(100));
        let sta = TimingAnalysis::run(&nl, &clk);
        assert!(sta.worst_slack().is_negative());
    }

    #[test]
    fn critical_pin_tracks_slower_input() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let q = b.flop("f", a); // arrives at 40
        let slow = b.gate("buf", &[q]).unwrap(); // 68
        let y = b.gate("nand2", &[q, slow]).unwrap();
        let o = b.flop("fo", y);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(1000)));
        // Pin 1 (slow) dominates: 68 + 24 = 92 vs 40 + 24 = 64.
        assert_eq!(sta.critical_pin(y), Some(1));
        assert_eq!(sta.arrival(y), Picos(92));
    }

    #[test]
    fn custom_delay_calculator_derates() {
        struct Doubled;
        impl DelayCalculator for Doubled {
            fn max_arc_delay(&self, nl: &Netlist, inst: InstId, pin: usize) -> Picos {
                LibraryDelays.max_arc_delay(nl, inst, pin) * 2
            }
        }
        let (nl, nets) = chain(2);
        let clk = ClockConstraint::with_period(Picos(1000));
        let base = TimingAnalysis::run(&nl, &clk);
        let slow = TimingAnalysis::run_with(&nl, &clk, &Doubled);
        let last = *nets.last().unwrap();
        assert_eq!(
            slow.arrival(last) - Picos(40),
            (base.arrival(last) - Picos(40)) * 2
        );
    }

    #[test]
    fn required_arrival_subtracts_setup() {
        let c = ClockConstraint::with_period(Picos(500));
        assert_eq!(c.required_arrival(), Picos(470));
    }
}
