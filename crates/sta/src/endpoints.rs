//! Flip-flop endpoint/startpoint classification — the analysis behind
//! the paper's Fig. 1 and TIMBER's motivating observation.
//!
//! The paper observes that only a small fraction of flip-flops both
//! *terminate* and *originate* critical paths; flops that only terminate
//! them are susceptible to single-stage timing errors only, which TIMBER
//! masks by borrowing one time unit from the (slack-rich) next stage.

use timber_netlist::{FlopId, Netlist, Picos};

use crate::analysis::TimingAnalysis;

/// Timing role of one flip-flop at a given criticality threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlopTimingClass {
    /// A path with delay ≥ threshold terminates at this flop's D pin.
    pub ends_critical: bool,
    /// A path with delay ≥ threshold originates at this flop's Q pin.
    pub starts_critical: bool,
}

impl FlopTimingClass {
    /// True when the flop both starts and ends critical paths — the
    /// multi-stage-error-susceptible case.
    pub fn starts_and_ends(&self) -> bool {
        self.ends_critical && self.starts_critical
    }
}

/// Classifies every flip-flop against a path-delay threshold.
///
/// * `ends_critical`: max arrival at the flop's D net ≥ `threshold`.
/// * `starts_critical`: `clk_to_q + max downstream delay from Q` ≥
///   `threshold`.
pub fn classify_flops(sta: &TimingAnalysis<'_>, threshold: Picos) -> Vec<FlopTimingClass> {
    let netlist = sta.netlist();
    let clk_to_q = sta.constraint().clk_to_q;
    netlist
        .flop_ids()
        .map(|f| {
            let flop = netlist.flop(f);
            let ends_critical = sta.arrival(flop.d()) >= threshold;
            let down = sta.downstream(flop.q());
            let starts_critical = down != Picos::MIN && clk_to_q + down >= threshold;
            FlopTimingClass {
                ends_critical,
                starts_critical,
            }
        })
        .collect()
}

/// Max data-arrival time at every flip-flop's D pin, in flop-id order.
///
/// This is the per-endpoint criticality vector that workload-aware
/// protection-set selection (READ-style, see `timber-tune`) ranks and
/// cuts; it pairs each flop with the same arrival the
/// `ends_critical` classification thresholds against.
pub fn endpoint_arrivals(sta: &TimingAnalysis<'_>, netlist: &Netlist) -> Vec<(FlopId, Picos)> {
    netlist
        .flop_ids()
        .map(|f| (f, sta.arrival(netlist.flop(f).d())))
        .collect()
}

/// One row of the Fig. 1 reproduction: statistics at a single top-c%
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionRow {
    /// Threshold as a percentage of the clock period (a path is top-c%
    /// when its delay ≥ (1 - c/100) × period).
    pub threshold_pct: f64,
    /// Fraction of flip-flops at which a top-c% path terminates.
    pub frac_ending: f64,
    /// Fraction of flip-flops at which top-c% paths both start and end.
    pub frac_start_and_end: f64,
}

/// Critical-path distribution between flip-flops at several thresholds
/// (the paper's Fig. 1 for one performance point).
#[derive(Debug, Clone, PartialEq)]
pub struct PathDistribution {
    /// Rows, one per threshold, in the order supplied.
    pub rows: Vec<DistributionRow>,
    /// Number of flip-flops in the design.
    pub flop_count: usize,
}

impl PathDistribution {
    /// Measures the distribution on an analysed design.
    ///
    /// `thresholds_pct` are the c values (e.g. `[10.0, 20.0, 30.0,
    /// 40.0]`); a path is top-c% when its delay ≥ `(1 - c/100) ×
    /// period`.
    ///
    /// # Panics
    ///
    /// Panics if the design has no flip-flops.
    pub fn measure(sta: &TimingAnalysis<'_>, thresholds_pct: &[f64]) -> PathDistribution {
        let netlist = sta.netlist();
        let n = netlist.flop_count();
        assert!(n > 0, "path distribution needs at least one flip-flop");
        let period = sta.constraint().period;
        let rows = thresholds_pct
            .iter()
            .map(|&c| {
                let threshold = period.scale(1.0 - c / 100.0);
                let classes = classify_flops(sta, threshold);
                let ending = classes.iter().filter(|k| k.ends_critical).count();
                let both = classes.iter().filter(|k| k.starts_and_ends()).count();
                DistributionRow {
                    threshold_pct: c,
                    frac_ending: ending as f64 / n as f64,
                    frac_start_and_end: both as f64 / n as f64,
                }
            })
            .collect();
        PathDistribution {
            rows,
            flop_count: n,
        }
    }

    /// Flip-flops that end a top-c% path, i.e. the flops TIMBER replaces
    /// for a checking period of c% of the clock.
    pub fn replacement_set(sta: &TimingAnalysis<'_>, netlist: &Netlist, c_pct: f64) -> Vec<FlopId> {
        let threshold = sta.constraint().period.scale(1.0 - c_pct / 100.0);
        let classes = classify_flops(sta, threshold);
        netlist
            .flop_ids()
            .zip(classes)
            .filter(|(_, k)| k.ends_critical)
            .map(|(f, _)| f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ClockConstraint;
    use timber_netlist::{CellLibrary, NetlistBuilder};

    /// Three-stage design:
    ///   f0 -(deep logic)-> f1 -(shallow)-> f2
    /// f1 ends a critical path but does not start one.
    fn asym() -> Netlist {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("asym", &lib);
        let a = b.input("a");
        let mut x = b.flop("f0", a);
        let f0_q = x;
        for _ in 0..10 {
            x = b.gate("buf", &[x]).unwrap();
        }
        let q1 = b.flop("f1", x);
        let y = b.gate("inv", &[q1]).unwrap();
        let q2 = b.flop("f2", y);
        b.output("o", q2);
        let _ = f0_q;
        b.finish().unwrap()
    }

    #[test]
    fn classification_distinguishes_roles() {
        let nl = asym();
        // Deep stage: 40 + 10*28 = 320ps. Use period 400, threshold 300.
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(400)));
        let classes = classify_flops(&sta, Picos(300));
        // f0 starts the deep path but nothing critical ends at it.
        assert!(!classes[0].ends_critical);
        assert!(classes[0].starts_critical);
        // f1 ends the deep path; its outgoing logic is shallow (56ps).
        assert!(classes[1].ends_critical);
        assert!(!classes[1].starts_critical);
        assert!(!classes[1].starts_and_ends());
        // f2 ends only a shallow path.
        assert!(!classes[2].ends_critical);
        assert!(!classes[2].starts_critical);
    }

    #[test]
    fn start_and_end_detected_on_chained_critical_stages() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("chain2", &lib);
        let a = b.input("a");
        let mut x = b.flop("f0", a);
        for _ in 0..10 {
            x = b.gate("buf", &[x]).unwrap();
        }
        let q1 = b.flop("f1", x);
        let mut y = q1;
        for _ in 0..10 {
            y = b.gate("buf", &[y]).unwrap();
        }
        let q2 = b.flop("f2", y);
        b.output("o", q2);
        let nl = b.finish().unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(400)));
        let classes = classify_flops(&sta, Picos(300));
        assert!(classes[1].starts_and_ends());
    }

    #[test]
    fn distribution_fractions_are_monotone_in_threshold() {
        let lib = CellLibrary::standard();
        let nl = timber_netlist::pipelined_datapath(
            &lib,
            &timber_netlist::DatapathSpec::uniform(4, 12, 120, 0.7, 11),
        )
        .unwrap();
        let clk = ClockConstraint::with_period(Picos(900));
        let sta = TimingAnalysis::run(&nl, &clk);
        let dist = PathDistribution::measure(&sta, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(dist.rows.len(), 4);
        for w in dist.rows.windows(2) {
            // Larger c => lower threshold => more flops qualify.
            assert!(w[1].frac_ending >= w[0].frac_ending);
            assert!(w[1].frac_start_and_end >= w[0].frac_start_and_end);
        }
        for row in &dist.rows {
            assert!(row.frac_start_and_end <= row.frac_ending + 1e-12);
            assert!((0.0..=1.0).contains(&row.frac_ending));
        }
    }

    #[test]
    fn replacement_set_contains_critical_enders_only() {
        let nl = asym();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(400)));
        // threshold for c=25%: 300ps => only f1 qualifies.
        let set = PathDistribution::replacement_set(&sta, &nl, 25.0);
        assert_eq!(set, vec![FlopId(1)]);
    }
}
