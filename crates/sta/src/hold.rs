//! Min-delay (hold) analysis and short-path padding.
//!
//! TIMBER's checking period extends the window after the clock edge in
//! which a stage boundary is still "listening" to its data input, so
//! every short path must be padded to a delay of at least `hold +
//! checking period` (paper §4). This module computes the per-endpoint
//! deficits and a buffer-insertion plan whose cost feeds the
//! `timber-power` overhead model.

use timber_netlist::{Driver, FlopId, Netlist, NetlistError, Picos, Sink};

use crate::analysis::{ClockConstraint, DelayCalculator, LibraryDelays};

/// Result of a min-delay analysis.
#[derive(Debug, Clone)]
pub struct HoldAnalysis {
    /// Min arrival time at each net (`Picos::MAX` when unreachable).
    min_arrival: Vec<Picos>,
    constraint: ClockConstraint,
}

impl HoldAnalysis {
    /// Runs min-delay analysis with library best-case arc delays.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop; validated
    /// netlists never do. Use [`HoldAnalysis::try_run`] for netlists of
    /// unknown provenance.
    pub fn run(netlist: &Netlist, constraint: &ClockConstraint) -> HoldAnalysis {
        HoldAnalysis::run_with(netlist, constraint, &LibraryDelays)
    }

    /// Runs min-delay analysis with a custom delay calculator.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop (see
    /// [`HoldAnalysis::try_run_with`]).
    pub fn run_with(
        netlist: &Netlist,
        constraint: &ClockConstraint,
        delays: &dyn DelayCalculator,
    ) -> HoldAnalysis {
        HoldAnalysis::try_run_with(netlist, constraint, delays)
            .expect("validated netlist must be acyclic")
    }

    /// Runs min-delay analysis, reporting a combinational loop (with
    /// its full cycle path) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// logic is cyclic.
    pub fn try_run(
        netlist: &Netlist,
        constraint: &ClockConstraint,
    ) -> Result<HoldAnalysis, NetlistError> {
        HoldAnalysis::try_run_with(netlist, constraint, &LibraryDelays)
    }

    /// Runs min-delay analysis with a custom delay calculator,
    /// reporting a combinational loop instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// logic is cyclic.
    pub fn try_run_with(
        netlist: &Netlist,
        constraint: &ClockConstraint,
        delays: &dyn DelayCalculator,
    ) -> Result<HoldAnalysis, NetlistError> {
        let topo = timber_netlist::topo_order(netlist)?;
        let mut min_arrival = vec![Picos::MAX; netlist.net_count()];
        for net_id in netlist.net_ids() {
            min_arrival[net_id.0 as usize] = match netlist.net(net_id).driver() {
                Some(Driver::PrimaryInput) => Picos::ZERO,
                Some(Driver::FlopQ(_)) => constraint.clk_to_q,
                _ => Picos::MAX,
            };
        }
        for inst_id in topo {
            let inst = netlist.instance(inst_id);
            let mut best = Picos::MAX;
            for (pin, &input) in inst.inputs().iter().enumerate() {
                let in_arr = min_arrival[input.0 as usize];
                if in_arr == Picos::MAX {
                    continue;
                }
                let t = in_arr + delays.min_arc_delay(netlist, inst_id, pin);
                best = best.min(t);
            }
            min_arrival[inst.output().0 as usize] = best;
        }
        Ok(HoldAnalysis {
            min_arrival,
            constraint: *constraint,
        })
    }

    /// Min arrival at a net.
    pub fn min_arrival(&self, net: timber_netlist::NetId) -> Picos {
        self.min_arrival[net.0 as usize]
    }

    /// Builds the padding plan for a checking period.
    ///
    /// Every flop D endpoint needs `min_arrival ≥ hold + checking_period`;
    /// endpoints short of that must be padded with delay buffers.
    pub fn padding_plan(&self, netlist: &Netlist, checking_period: Picos) -> PaddingPlan {
        let floor = self.constraint.hold + checking_period;
        let mut deficits = Vec::new();
        let mut total = Picos::ZERO;
        for net_id in netlist.net_ids() {
            let has_flop_sink = netlist
                .net(net_id)
                .fanout()
                .iter()
                .any(|s| matches!(s, Sink::FlopD(_)));
            if !has_flop_sink {
                continue;
            }
            let arr = self.min_arrival[net_id.0 as usize];
            if arr == Picos::MAX {
                continue;
            }
            if arr < floor {
                let deficit = floor - arr;
                for sink in netlist.net(net_id).fanout() {
                    if let Sink::FlopD(f) = *sink {
                        deficits.push((f, deficit));
                        total += deficit;
                    }
                }
            }
        }
        PaddingPlan {
            floor,
            deficits,
            total_padding: total,
        }
    }
}

/// Buffer-insertion plan to satisfy the extended hold constraint.
#[derive(Debug, Clone)]
pub struct PaddingPlan {
    /// Required min path delay (`hold + checking period`).
    pub floor: Picos,
    /// Endpoints needing padding and the delay each is short by.
    pub deficits: Vec<(FlopId, Picos)>,
    /// Sum of all deficits.
    pub total_padding: Picos,
}

impl PaddingPlan {
    /// Number of delay buffers required if each contributes `buf_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `buf_delay` is not positive.
    pub fn buffers_needed(&self, buf_delay: Picos) -> usize {
        assert!(buf_delay > Picos::ZERO, "buffer delay must be positive");
        self.deficits
            .iter()
            .map(|(_, d)| ((d.as_ps() + buf_delay.as_ps() - 1) / buf_delay.as_ps()) as usize)
            .sum()
    }

    /// True when no endpoint needs padding.
    pub fn is_empty(&self) -> bool {
        self.deficits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timber_netlist::{CellLibrary, NetlistBuilder};

    fn direct_and_buffered() -> Netlist {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("hold", &lib);
        let a = b.input("a");
        let q = b.flop("f0", a);
        // Short path: Q straight into the next flop.
        let q1 = b.flop("f_short", q);
        // Longer path through two buffers.
        let x = b.gate("buf", &[q]).unwrap();
        let y = b.gate("buf", &[x]).unwrap();
        let q2 = b.flop("f_long", y);
        b.output("o1", q1);
        b.output("o2", q2);
        b.finish().unwrap()
    }

    #[test]
    fn min_arrival_takes_fastest_route() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let q = b.flop("f", a);
        let fast = b.gate("inv", &[q]).unwrap(); // best arc 14
        let slow = b.gate("buf", &[fast]).unwrap(); // +28
        let m = b.gate("nand2", &[fast, slow]).unwrap(); // best arc 18/20
        let o = b.flop("fo", m);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let h = HoldAnalysis::run(&nl, &ClockConstraint::with_period(Picos(500)));
        // Fast route: 40 + 14 + 18 = 72.
        assert_eq!(h.min_arrival(m), Picos(72));
    }

    #[test]
    fn padding_plan_flags_short_paths_only() {
        let nl = direct_and_buffered();
        let clk = ClockConstraint::with_period(Picos(500));
        let h = HoldAnalysis::run(&nl, &clk);
        // Checking period 100ps: floor = 20 + 100 = 120.
        let plan = h.padding_plan(&nl, Picos(100));
        // f_short sees min arrival 40 (< 120): deficit 80.
        // f_long sees 40 + 28 + 28 = 96 (< 120): deficit 24.
        // f0's D comes from a PI with arrival 0: deficit 120.
        assert_eq!(plan.floor, Picos(120));
        assert_eq!(plan.deficits.len(), 3);
        assert_eq!(plan.total_padding, Picos(80 + 24 + 120));
    }

    #[test]
    fn zero_checking_period_often_needs_no_padding() {
        let nl = direct_and_buffered();
        let clk = ClockConstraint::with_period(Picos(500));
        let h = HoldAnalysis::run(&nl, &clk);
        // floor = hold = 20 < clk_to_q = 40, so register-to-register
        // paths are safe; only the PI-fed flop violates.
        let plan = h.padding_plan(&nl, Picos::ZERO);
        assert_eq!(plan.deficits.len(), 1);
    }

    #[test]
    fn buffers_needed_rounds_up() {
        let plan = PaddingPlan {
            floor: Picos(100),
            deficits: vec![(FlopId(0), Picos(50)), (FlopId(1), Picos(57))],
            total_padding: Picos(107),
        };
        // With 28ps buffers: ceil(50/28)=2, ceil(57/28)=3.
        assert_eq!(plan.buffers_needed(Picos(28)), 5);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer delay must be positive")]
    fn buffers_needed_validates_delay() {
        let plan = PaddingPlan {
            floor: Picos(0),
            deficits: vec![],
            total_padding: Picos(0),
        };
        let _ = plan.buffers_needed(Picos(0));
    }
}
