//! Exact critical-path enumeration in decreasing delay order.
//!
//! Paths are enumerated by a best-first backward search from timing
//! endpoints. A search state is a partial path suffix; its priority is an
//! exact bound `arrival(current net) + suffix delay`, so states pop in
//! true path-delay order and enumeration can stop as soon as the next
//! path falls below a threshold — no post-sorting, no wasted expansion.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use timber_netlist::{Driver, FlopId, NetId, Picos, Sink};

use crate::analysis::TimingAnalysis;

/// Where a timing path launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathStart {
    /// Launched from a primary input.
    PrimaryInput(NetId),
    /// Launched from a flip-flop Q output.
    FlopQ(FlopId),
}

/// Where a timing path is captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathEndpoint {
    /// Captured at a flip-flop D input.
    FlopD(FlopId),
    /// Captured at a primary output.
    PrimaryOutput(NetId),
}

/// A complete register-to-register (or I/O) timing path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingPath {
    /// Launch point.
    pub start: PathStart,
    /// Capture point.
    pub end: PathEndpoint,
    /// Nets along the path, from the start net to the endpoint net.
    pub nets: Vec<NetId>,
    /// Total path delay including clock-to-Q at the launching flop.
    pub delay: Picos,
}

impl TimingPath {
    /// Slack of this path against the analysis constraint.
    pub fn slack(&self, sta: &TimingAnalysis<'_>) -> Picos {
        sta.constraint().required_arrival() - self.delay
    }

    /// Number of combinational stages (nets minus one).
    pub fn length(&self) -> usize {
        self.nets.len().saturating_sub(1)
    }
}

/// Query parameters for [`enumerate_paths`].
#[derive(Debug, Clone, Copy)]
pub struct PathQuery {
    /// Maximum number of paths to return.
    pub max_paths: usize,
    /// Only return paths with delay at least this value.
    pub min_delay: Picos,
}

impl Default for PathQuery {
    fn default() -> PathQuery {
        PathQuery {
            max_paths: 100,
            min_delay: Picos::MIN,
        }
    }
}

struct State {
    bound: Picos,
    current: NetId,
    suffix: Picos,
    end: PathEndpoint,
    /// Nets from `current` to the endpoint, reversed during search.
    trail: Vec<NetId>,
}

impl PartialEq for State {
    fn eq(&self, other: &State) -> bool {
        self.bound == other.bound
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &State) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &State) -> Ordering {
        self.bound.cmp(&other.bound)
    }
}

/// Enumerates timing paths in strictly non-increasing delay order.
///
/// Returns at most `query.max_paths` paths, all with delay ≥
/// `query.min_delay`.
pub fn enumerate_paths(sta: &TimingAnalysis<'_>, query: &PathQuery) -> Vec<TimingPath> {
    let netlist = sta.netlist();
    let mut heap: BinaryHeap<State> = BinaryHeap::new();

    for net_id in netlist.net_ids() {
        let arr = sta.arrival(net_id);
        if arr == Picos::MIN || arr < query.min_delay {
            continue;
        }
        for sink in netlist.net(net_id).fanout() {
            let end = match *sink {
                Sink::FlopD(f) => PathEndpoint::FlopD(f),
                Sink::PrimaryOutput => PathEndpoint::PrimaryOutput(net_id),
                Sink::InstancePin(..) => continue,
            };
            heap.push(State {
                bound: arr,
                current: net_id,
                suffix: Picos::ZERO,
                end,
                trail: vec![net_id],
            });
        }
    }

    let mut paths = Vec::new();
    while let Some(state) = heap.pop() {
        if paths.len() >= query.max_paths {
            break;
        }
        if state.bound < query.min_delay {
            break; // All remaining states are no better.
        }
        let current = state.current;
        match netlist.net(current).driver() {
            Some(Driver::PrimaryInput) => {
                paths.push(finish(state, PathStart::PrimaryInput(current)));
            }
            Some(Driver::FlopQ(f)) => {
                paths.push(finish(state, PathStart::FlopQ(f)));
            }
            Some(Driver::Instance(inst_id)) => {
                let inst = netlist.instance(inst_id);
                for (pin, &input) in inst.inputs().iter().enumerate() {
                    let in_arr = sta.arrival(input);
                    if in_arr == Picos::MIN {
                        continue;
                    }
                    let suffix = state.suffix + sta.arc_delay(inst_id, pin);
                    let bound = in_arr + suffix;
                    if bound < query.min_delay {
                        continue;
                    }
                    let mut trail = state.trail.clone();
                    trail.push(input);
                    heap.push(State {
                        bound,
                        current: input,
                        suffix,
                        end: state.end,
                        trail,
                    });
                }
            }
            None => {}
        }
    }
    paths
}

fn finish(state: State, start: PathStart) -> TimingPath {
    let mut nets = state.trail;
    nets.reverse();
    TimingPath {
        start,
        end: state.end,
        nets,
        delay: state.bound,
    }
}

/// All paths with delay at least `threshold`, up to `cap` paths, in
/// non-increasing delay order. The boolean is true when the cap was hit
/// before enumeration reached the threshold (C-INTERMEDIATE: callers can
/// detect truncation rather than silently treating the list as complete).
pub fn paths_above(
    sta: &TimingAnalysis<'_>,
    threshold: Picos,
    cap: usize,
) -> (Vec<TimingPath>, bool) {
    let paths = enumerate_paths(
        sta,
        &PathQuery {
            max_paths: cap,
            min_delay: threshold,
        },
    );
    let truncated = paths.len() == cap;
    (paths, truncated)
}

/// The single worst path, reconstructed by following the critical-pin
/// annotations of the analysis (O(depth), no heap).
pub fn worst_path(sta: &TimingAnalysis<'_>) -> TimingPath {
    let netlist = sta.netlist();
    // Find the worst endpoint net.
    let mut worst_net = None;
    let mut worst_arr = Picos::MIN;
    let mut worst_end = None;
    for net_id in netlist.net_ids() {
        for sink in netlist.net(net_id).fanout() {
            let end = match *sink {
                Sink::FlopD(f) => PathEndpoint::FlopD(f),
                Sink::PrimaryOutput => PathEndpoint::PrimaryOutput(net_id),
                Sink::InstancePin(..) => continue,
            };
            let arr = sta.arrival(net_id);
            if arr != Picos::MIN && arr > worst_arr {
                worst_arr = arr;
                worst_net = Some(net_id);
                worst_end = Some(end);
            }
        }
    }
    let endpoint_net = worst_net.expect("design has at least one timing endpoint");
    let mut nets = vec![endpoint_net];
    let mut current = endpoint_net;
    let start = loop {
        match netlist.net(current).driver() {
            Some(Driver::PrimaryInput) => break PathStart::PrimaryInput(current),
            Some(Driver::FlopQ(f)) => break PathStart::FlopQ(f),
            Some(Driver::Instance(inst_id)) => {
                let pin = sta
                    .critical_pin(current)
                    .expect("instance-driven net has a critical pin");
                current = netlist.instance(inst_id).inputs()[pin];
                nets.push(current);
            }
            None => unreachable!("validated netlist has no undriven nets"),
        }
    };
    nets.reverse();
    TimingPath {
        start,
        end: worst_end.expect("endpoint exists"),
        nets,
        delay: worst_arr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ClockConstraint;
    use timber_netlist::{ripple_carry_adder, CellLibrary, NetlistBuilder};

    #[test]
    fn worst_path_matches_enumeration_head() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 6).unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(2000)));
        let wp = worst_path(&sta);
        let listed = enumerate_paths(&sta, &PathQuery::default());
        assert_eq!(listed[0].delay, wp.delay);
        assert_eq!(wp.delay, sta.worst_arrival());
    }

    #[test]
    fn enumeration_is_non_increasing() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 6).unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(2000)));
        let paths = enumerate_paths(
            &sta,
            &PathQuery {
                max_paths: 50,
                min_delay: Picos::MIN,
            },
        );
        assert!(paths.len() > 5);
        for w in paths.windows(2) {
            assert!(w[0].delay >= w[1].delay, "paths must be sorted by delay");
        }
    }

    #[test]
    fn rca_critical_path_is_carry_chain() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 8).unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(2000)));
        let wp = worst_path(&sta);
        // clk_to_q + 7 carries + final sum-or-carry; depth ~ 9 nets min.
        assert!(
            wp.length() >= 8,
            "carry chain should be deep: {}",
            wp.length()
        );
        assert!(matches!(wp.start, PathStart::FlopQ(_)));
        assert!(matches!(wp.end, PathEndpoint::FlopD(_)));
    }

    #[test]
    fn min_delay_threshold_filters() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 6).unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(2000)));
        let worst = sta.worst_arrival();
        let threshold = worst - Picos(50);
        let (paths, truncated) = paths_above(&sta, threshold, 10_000);
        assert!(!truncated);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(p.delay >= threshold);
        }
    }

    #[test]
    fn truncation_is_reported() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 8).unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(2000)));
        let (paths, truncated) = paths_above(&sta, Picos::MIN, 3);
        assert_eq!(paths.len(), 3);
        assert!(truncated);
    }

    #[test]
    fn path_slack_and_length() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let q = b.flop("f", a);
        let x = b.gate("buf", &[q]).unwrap();
        let o = b.flop("fo", x);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(500)));
        let wp = worst_path(&sta);
        // 40 (clk_to_q) + 28 (buf) = 68; required = 470.
        assert_eq!(wp.delay, Picos(68));
        assert_eq!(wp.slack(&sta), Picos(402));
        assert_eq!(wp.length(), 1);
        assert_eq!(wp.nets.len(), 2);
    }

    #[test]
    fn reconvergent_paths_both_enumerated() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("diamond", &lib);
        let a = b.input("a");
        let q = b.flop("f", a);
        let slow = b.gate("xor2", &[q, q]).unwrap(); // 44 worst
        let fast = b.gate("inv", &[q]).unwrap(); // 16 worst
        let m = b.gate("nand2", &[slow, fast]).unwrap();
        let o = b.flop("fo", m);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(500)));
        let paths = enumerate_paths(
            &sta,
            &PathQuery {
                max_paths: 10,
                min_delay: Picos::MIN,
            },
        );
        // Through-xor (two pins), through-inv: at least 3 distinct paths
        // end at the flop.
        assert!(paths.len() >= 3, "got {}", paths.len());
        assert!(paths[0].delay > paths[paths.len() - 1].delay);
    }
}
