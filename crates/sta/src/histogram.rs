//! Slack histograms: the "timing wall" view of a design.
//!
//! Performance points differ in how endpoint slack is distributed — a
//! relaxed design has a long slack tail, an aggressive one piles
//! endpoints against zero slack (the wall). The histogram quantifies
//! that and feeds the per-performance-point narratives in the Fig. 1
//! reproduction.

use timber_netlist::{Netlist, Picos};

use crate::analysis::TimingAnalysis;

/// A histogram of endpoint slack, in fixed-width bins over the clock
/// period.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackHistogram {
    /// Bin width.
    pub bin_width: Picos,
    /// `bins[i]` counts flop endpoints with slack in
    /// `[i·bin_width, (i+1)·bin_width)`.
    pub bins: Vec<usize>,
    /// Endpoints with negative slack (failing).
    pub failing: usize,
    /// Total flop endpoints counted.
    pub total: usize,
}

impl SlackHistogram {
    /// Builds the histogram of flop-endpoint slacks with `bins` equal
    /// bins across `[0, period)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn measure(sta: &TimingAnalysis<'_>, netlist: &Netlist, bins: usize) -> SlackHistogram {
        assert!(bins > 0, "need at least one bin");
        let period = sta.constraint().period;
        let bin_width = period / bins as i64;
        let mut histogram = vec![0usize; bins];
        let mut failing = 0usize;
        let mut total = 0usize;
        for f in netlist.flop_ids() {
            let arrival = sta.arrival(netlist.flop(f).d());
            if arrival == Picos::MIN {
                continue;
            }
            total += 1;
            let slack = sta.endpoint_slack(arrival);
            if slack.is_negative() {
                failing += 1;
            } else {
                let idx = ((slack.as_ps() / bin_width.as_ps().max(1)) as usize).min(bins - 1);
                histogram[idx] += 1;
            }
        }
        SlackHistogram {
            bin_width,
            bins: histogram,
            failing,
            total,
        }
    }

    /// Fraction of endpoints with slack below `threshold` (the
    /// near-critical population).
    pub fn fraction_below(&self, threshold: Picos) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let full_bins = (threshold.as_ps() / self.bin_width.as_ps().max(1)) as usize;
        let below: usize = self.bins.iter().take(full_bins).sum::<usize>() + self.failing;
        below as f64 / self.total as f64
    }

    /// Renders as an ASCII bar chart (one row per bin).
    pub fn render(&self) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        if self.failing > 0 {
            out.push_str(&format!("  <0         | {:>5}  (failing)\n", self.failing));
        }
        for (i, &count) in self.bins.iter().enumerate() {
            let lo = self.bin_width * i as i64;
            let bar = "#".repeat(count * 40 / max);
            out.push_str(&format!(
                "  {:>5}..{:<5}| {count:>5}  {bar}\n",
                lo.as_ps(),
                (lo + self.bin_width).as_ps()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ClockConstraint;
    use timber_netlist::{pipelined_datapath, CellLibrary, DatapathSpec};

    fn measured(period_scale: f64) -> SlackHistogram {
        let lib = CellLibrary::standard();
        let nl = pipelined_datapath(&lib, &DatapathSpec::uniform(4, 12, 150, 0.7, 3)).unwrap();
        let probe = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(100_000)));
        let period = probe.worst_arrival().scale(period_scale);
        let clk = ClockConstraint::with_period(period);
        let sta = TimingAnalysis::run(&nl, &clk);
        SlackHistogram::measure(&sta, &nl, 10)
    }

    #[test]
    fn bins_cover_all_endpoints() {
        let h = measured(1.1);
        let counted: usize = h.bins.iter().sum::<usize>() + h.failing;
        assert_eq!(counted, h.total);
        assert!(h.total > 0);
        assert_eq!(h.failing, 0, "relaxed clock must meet timing");
    }

    #[test]
    fn tighter_clock_shifts_mass_toward_the_wall() {
        let relaxed = measured(1.4);
        let tight = measured(1.02);
        let near = |h: &SlackHistogram| h.fraction_below(h.bin_width * 2);
        assert!(
            near(&tight) > near(&relaxed),
            "tight {} vs relaxed {}",
            near(&tight),
            near(&relaxed)
        );
    }

    #[test]
    fn failing_endpoints_counted_when_overclocked() {
        let h = measured(0.8);
        assert!(h.failing > 0);
        assert!(h.fraction_below(Picos(0)) > 0.0);
    }

    #[test]
    fn render_is_nonempty_and_mentions_failing() {
        let h = measured(0.8);
        let text = h.render();
        assert!(text.contains("failing"));
        assert!(text.lines().count() >= 10);
    }
}
