//! Deterministic, bounded, content-addressed LRU caches.
//!
//! One generic [`LruCache`] backs both tiers of the engine: the
//! *result* tier (spec key → finished response body) and the *design*
//! tier (design key → [`crate::compile::CompiledDesign`]). Recency is a
//! logical tick the cache increments on every touch — no wall clock —
//! and eviction takes the smallest `(tick, key)` pair, so the entire
//! cache trajectory (hits, misses, which entry leaves when) is a pure
//! function of the touch sequence. The storm gate leans on that: replay
//! the same request stream and the eviction counters diff byte-equal.

use std::collections::BTreeMap;

use crate::key::CacheKey;

/// A bounded map from content keys to values with logical-clock LRU
/// eviction.
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<CacheKey, (u64, V)>,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a cache that can hold nothing
    /// would turn every request into a miss and silently void the
    /// service's speedup contract.
    pub fn new(capacity: usize) -> LruCache<V> {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|slot| {
            slot.0 = tick;
            &slot.1
        })
    }

    /// Peeks at `key` without refreshing recency (diagnostics only).
    pub fn peek(&self, key: &CacheKey) -> Option<&V> {
        self.entries.get(key).map(|slot| &slot.1)
    }

    /// Mutable peek without refreshing recency. This is the chaos
    /// harness's corruption port: flipping a byte in place must not
    /// disturb the recency trajectory, or detection would perturb the
    /// very determinism the campaign gates on.
    pub fn peek_mut(&mut self, key: &CacheKey) -> Option<&mut V> {
        self.entries.get_mut(key).map(|slot| &mut slot.1)
    }

    /// Removes `key`, returning its value. Quarantine path: a cached
    /// entry whose checksum fails verification is removed so the next
    /// request recomputes it as a miss.
    pub fn remove(&mut self, key: &CacheKey) -> Option<V> {
        self.entries.remove(key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns how many entries were
    /// evicted (0 or 1).
    pub fn insert(&mut self, key: CacheKey, value: V) -> usize {
        self.tick += 1;
        let replacing = self.entries.contains_key(&key);
        let mut evicted = 0;
        if !replacing && self.entries.len() == self.capacity {
            // Smallest (tick, key): the stalest entry, key order
            // breaking the (impossible under one tick per touch, but
            // belt-and-braces) tie deterministically.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, (t, _))| (*t, **k))
                .map(|(k, _)| *k)
                .expect("full cache is non-empty");
            self.entries.remove(&victim);
            evicted = 1;
        }
        self.entries.insert(key, (self.tick, value));
        evicted
    }

    /// The cached keys in key order (diagnostics / tests).
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::content_hash;

    fn k(n: u8) -> CacheKey {
        content_hash(&[n])
    }

    #[test]
    fn get_miss_then_hit() {
        let mut c: LruCache<String> = LruCache::new(4);
        assert!(c.get(&k(1)).is_none());
        assert_eq!(c.insert(k(1), "one".into()), 0);
        assert_eq!(c.get(&k(1)).map(String::as_str), Some("one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.get(&k(1)).is_some()); // refresh 1; 2 is now stalest
        assert_eq!(c.insert(k(3), 3), 1);
        assert!(c.peek(&k(2)).is_none());
        assert!(c.peek(&k(1)).is_some());
        assert!(c.peek(&k(3)).is_some());
    }

    #[test]
    fn replacing_an_entry_never_evicts() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert_eq!(c.insert(k(1), 10), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(1)), Some(&10));
    }

    #[test]
    fn eviction_trajectory_is_deterministic() {
        let run = || {
            let mut c: LruCache<u8> = LruCache::new(3);
            let mut log = Vec::new();
            for round in 0..20u8 {
                let key = k(round % 7);
                if c.get(&key).is_none() {
                    let evicted = c.insert(key, round);
                    log.push((round, evicted));
                }
            }
            let keys: Vec<String> = c.keys().map(|k| k.hex()).collect();
            (log, keys)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remove_frees_a_slot_without_touching_recency() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert_eq!(c.remove(&k(1)), Some(1));
        assert_eq!(c.remove(&k(1)), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.insert(k(3), 3), 0); // freed slot: no eviction
    }

    #[test]
    fn peek_mut_edits_in_place_without_refreshing() {
        let mut c: LruCache<String> = LruCache::new(2);
        c.insert(k(1), "aa".into());
        c.insert(k(2), "bb".into());
        if let Some(v) = c.peek_mut(&k(1)) {
            v.replace_range(0..1, "X");
        }
        assert_eq!(c.peek(&k(1)).map(String::as_str), Some("Xa"));
        // Recency untouched: key 1 is still the stalest and evicts first.
        assert_eq!(c.insert(k(3), "cc".into()), 1);
        assert!(c.peek(&k(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = LruCache::<u8>::new(0);
    }
}
