//! # timber-serve
//!
//! The persistent evaluation service for the TIMBER reproduction: a
//! daemon (`repro serve`) that accepts JSONL evaluation requests —
//! netlist/schedule spec, scheme, trial count, seed — over stdin or a
//! Unix socket and answers them from a content-addressed cache.
//!
//! ## Architecture
//!
//! * [`spec`] — request parsing with strict unknown-field rejection,
//!   and the *canonical* spec form whose injectivity makes content
//!   addressing sound (field order, whitespace and numeric spellings
//!   all collapse; distinct values never do).
//! * [`key`] — the 256-bit splitmix64-sponge content digest of a
//!   canonical form.
//! * [`cache`] — deterministic logical-clock LRU, instantiated twice:
//!   a *design* tier (compiled netlist + STA arrival quantiles +
//!   snapped schedule + hold-padding plan) and a *result* tier (full
//!   response bodies).
//! * [`mod@compile`] — the design tier's producer, plus the trial
//!   evaluator that reduces a spec against a compiled design to an
//!   id-independent response body.
//! * [`engine`] — batch orchestration: cache probes, in-batch
//!   coalescing, `catch_unwind`-isolated compiles, cache-miss
//!   evaluation through `timber-resilience`'s hardened work-pull
//!   executor (watchdog, retries, quarantine), crash-safe journalling
//!   through its torn-line-tolerant record log, and `timber-telemetry`
//!   service counters.
//! * [`integrity`] — sealed (checksummed) payloads: every cache entry
//!   and journal record carries a splitmix64-folded CRC over its exact
//!   bytes, verified on every read, so bit-rot is detected and
//!   recomputed as a miss instead of served.
//! * [`governor`] — the service-level degradation ladder (nominal →
//!   shed-low → cache-only → reject) driven by per-batch cold demand
//!   with hysteresis, mirroring `timber-resilience`'s `LadderGovernor`
//!   one layer up.
//! * [`server`] — the stdin and Unix-socket transports.
//! * [`storm`] — the deterministic load generator and its replay gate
//!   (`repro storm`), which doubles as the chaos client (seeded
//!   priorities, deadlines and jittered retries).
//!
//! ## Determinism contract
//!
//! Response bodies are pure functions of specs; responses sort by
//! request id; cache and quarantine counters are pure functions of the
//! request stream. Only `stats` responses and the storm `render()`
//! summary carry wall-clock latency, and both keep it in a separate
//! object so replay gates can diff the deterministic remainder
//! byte-for-byte.

#![warn(missing_docs)]

pub mod cache;
pub mod compile;
pub mod engine;
pub mod governor;
pub mod integrity;
pub mod key;
pub mod server;
pub mod spec;
pub mod storm;

pub use cache::LruCache;
pub use compile::{compile, evaluate, CompiledDesign};
pub use engine::{Engine, EngineConfig, EvalFault, Response};
pub use governor::{ServiceGovernor, ServiceGovernorConfig, ServiceLevel, ServiceTransition};
pub use integrity::{open, payload_crc, seal, SealError, SEAL_PREFIX_LEN};
pub use key::{content_hash, CacheKey};
pub use server::{serve_lines, serve_unix, DEFAULT_BATCH_SIZE};
pub use spec::{parse_request, DesignId, EvalSpec, Priority, Request};
pub use storm::{ClientChaos, StormReport, StormSpec};

#[cfg(test)]
mod props;
