//! The serving engine: content-addressed request processing.
//!
//! One [`Engine`] owns the two cache tiers, the durability journal and
//! the service telemetry, and processes request batches:
//!
//! 1. every line is parsed ([`crate::spec::parse_request`]); malformed
//!    lines become deterministic `status:"error"` responses;
//! 2. each evaluation request probes the result cache by content key —
//!    a hit is answered immediately, duplicate keys within the batch
//!    coalesce onto one pending evaluation (and count as hits);
//! 3. unique missing designs compile once (design tier), each compile
//!    isolated with `catch_unwind` so a poisoned request quarantines
//!    instead of killing the daemon;
//! 4. the remaining evaluations run as one hardened work-pull batch
//!    (`run_hardened`: watchdog, bounded retries, quarantine ledger);
//! 5. new results are journalled (crash-safe, torn-line tolerant) and
//!    inserted in canonical key order, then responses are emitted
//!    sorted by request id.
//!
//! Determinism: response bodies are pure functions of specs, cache
//! trajectories are pure functions of the request stream, and only the
//! `stats` operation exposes wall-clock latency (in its own object).
//!
//! # Integrity and degradation
//!
//! Every body entering the result cache or the journal is *sealed*
//! ([`crate::integrity`]): prefixed with a checksum over its exact
//! bytes. Reads verify the seal, so a flipped bit in RAM or on disk is
//! detected, counted (`cache_corrupt` / `journal_corrupt`), dropped,
//! and transparently recomputed as a miss — **a corrupted payload is
//! never served**. Admission runs through a [`ServiceGovernor`]
//! degradation ladder (nominal → shed-low → cache-only → reject) fed
//! by per-batch cold demand, and each miss is screened against the
//! request's `deadline_ms` with a deterministic cost model before any
//! work is spent on it.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use timber_resilience::{
    run_hardened, scan_log, HardenedSpec, JournalWriter, RetryPolicy, TrialJob,
};
use timber_telemetry::{ServiceCounter, ServiceStats};

use crate::cache::LruCache;
use crate::compile::{compile, evaluate, CompiledDesign};
use crate::governor::{ServiceGovernor, ServiceGovernorConfig, ServiceLevel};
use crate::integrity::{open, seal, SEAL_PREFIX_LEN};
use crate::key::CacheKey;
use crate::spec::{parse_request, EvalSpec, Priority, Request};

/// Default result-tier capacity (full response bodies).
pub const DEFAULT_RESULT_CAPACITY: usize = 1024;
/// Default design-tier capacity (compiled netlist artifacts).
pub const DEFAULT_DESIGN_CAPACITY: usize = 64;
/// Default per-attempt watchdog for one evaluation job.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);
/// Default attempts per evaluation before quarantine.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 2;
/// Deterministic cost model for deadline screening: simulated cycles
/// one wall-clock millisecond is assumed to cover. Deliberately a
/// *model*, not a measurement — wall-clock estimates would make
/// admission non-deterministic across machines.
pub const CYCLES_PER_MS: u64 = 100;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Result-tier capacity.
    pub result_capacity: usize,
    /// Design-tier capacity.
    pub design_capacity: usize,
    /// Worker threads for cache-miss batches (0 = all cores). Never
    /// changes any response byte.
    pub threads: usize,
    /// Append-only durability journal (`keyhex\tsealed-body` lines).
    pub journal: Option<PathBuf>,
    /// Preload the journal into the result cache at startup.
    pub resume: bool,
    /// Per-attempt watchdog for one evaluation job.
    pub watchdog: Duration,
    /// Attempts per evaluation before quarantine.
    pub max_attempts: u32,
    /// Backoff between evaluation attempts.
    pub retry: RetryPolicy,
    /// Treat a watchdog expiry as retryable instead of terminal.
    pub retry_hangs: bool,
    /// Admission-control ladder tuning (the default is inert).
    pub governor: ServiceGovernorConfig,
    /// Verify seals on cache reads. `false` is the chaos `--sabotage`
    /// switch: it disables exactly one checksum path so the campaign
    /// can prove it detects a served corruption.
    pub verify_reads: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            result_capacity: DEFAULT_RESULT_CAPACITY,
            design_capacity: DEFAULT_DESIGN_CAPACITY,
            threads: 0,
            journal: None,
            resume: false,
            watchdog: DEFAULT_WATCHDOG,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            retry: RetryPolicy::default_policy(),
            retry_hangs: false,
            governor: ServiceGovernorConfig::default(),
            verify_reads: true,
        }
    }
}

/// A one-shot fault armed by the chaos harness against the next cold
/// evaluation's **first attempt** (later attempts run clean, so the
/// retry machinery gets something to recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalFault {
    /// The first attempt sleeps past the watchdog and is abandoned.
    Hang,
    /// The first attempt stalls briefly, then fails retryably.
    Stall(Duration),
}

/// One rendered response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Brace-free body fields (everything after `"id":N,`).
    pub body: String,
}

impl Response {
    /// The full single-line JSON document.
    pub fn render(&self) -> String {
        format!("{{\"id\":{},{}}}", self.id, self.body)
    }
}

/// What one batch produced.
#[derive(Debug)]
pub struct BatchOutput {
    /// Responses sorted by request id.
    pub responses: Vec<Response>,
    /// True if the batch contained a shutdown request.
    pub shutdown: bool,
}

fn json_str(s: &str) -> String {
    serde_json::Value::String(s.to_owned()).to_string()
}

/// A pending cold evaluation: the spec plus every request id waiting on
/// its key.
struct Pending {
    spec: EvalSpec,
    ids: Vec<u64>,
}

/// The persistent serving engine.
pub struct Engine {
    config: EngineConfig,
    results: LruCache<String>,
    designs: LruCache<CompiledDesign>,
    journal: Option<JournalWriter>,
    stats: ServiceStats,
    governor: ServiceGovernor,
    /// One-shot fault armed by the chaos harness, consumed by the next
    /// batch's first cold evaluation.
    armed_fault: Option<EvalFault>,
    /// Running id handed to requests that carry none.
    seq: u64,
}

impl Engine {
    /// Builds an engine, replaying the journal into the result cache
    /// when `resume` is set. Replay always verifies seals: a corrupt
    /// record is counted and dropped (the key recomputes as a miss),
    /// and torn or malformed lines land in `journal_torn_lines`.
    pub fn new(config: EngineConfig) -> io::Result<Engine> {
        let mut stats = ServiceStats::new();
        let mut results = LruCache::new(config.result_capacity);
        if let (Some(path), true) = (&config.journal, config.resume) {
            if path.exists() {
                // Last record wins per key, in file order — exactly the
                // state the journal writer left behind.
                let (records, scan) = scan_log(path)?;
                stats.add(ServiceCounter::JournalTornLines, scan.dropped());
                let mut resumed: BTreeSet<CacheKey> = BTreeSet::new();
                for (key, sealed) in records {
                    match CacheKey::from_hex(&key) {
                        Some(key) if open(&sealed, true).is_ok() => {
                            resumed.insert(key);
                            results.insert(key, sealed);
                        }
                        _ => stats.bump(ServiceCounter::JournalCorrupt),
                    }
                }
                stats.add(ServiceCounter::Resumed, resumed.len() as u64);
            }
        }
        let journal = match &config.journal {
            Some(path) => Some(JournalWriter::append(path)?),
            None => None,
        };
        Ok(Engine {
            designs: LruCache::new(config.design_capacity),
            governor: ServiceGovernor::new(config.governor),
            config,
            results,
            journal,
            stats,
            armed_fault: None,
            seq: 0,
        })
    }

    /// The engine's telemetry.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Result-tier occupancy (diagnostics).
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }

    /// Current service degradation level.
    pub fn service_level(&self) -> ServiceLevel {
        self.governor.level()
    }

    /// Deadline cost model: the milliseconds `spec` is assumed to cost
    /// on a miss. A pure function of the spec, so admission is
    /// byte-identical everywhere.
    pub fn estimated_ms(spec: &EvalSpec) -> u64 {
        (spec.trials as u64)
            .saturating_mul(spec.cycles)
            .div_ceil(CYCLES_PER_MS)
    }

    /// Chaos hook: flips one payload byte of the `nth` cached result
    /// (in key order), past the seal prefix so the checksum — not the
    /// prefix parser — must catch it. Returns the corrupted key, or
    /// `None` if the cache holds fewer than `nth + 1` entries.
    pub fn corrupt_cached_result(&mut self, nth: usize, byte_seed: u64) -> Option<CacheKey> {
        let key = *self.results.keys().nth(nth)?;
        let sealed = self.results.peek_mut(&key)?;
        let body_len = sealed.len().checked_sub(SEAL_PREFIX_LEN)?;
        if body_len == 0 {
            return None;
        }
        let at = SEAL_PREFIX_LEN + (byte_seed % body_len as u64) as usize;
        // Replace with a printable byte that differs from the original,
        // keeping the entry valid UTF-8 and single-line.
        let replacement = if sealed.as_bytes()[at] == b'#' {
            "@"
        } else {
            "#"
        };
        sealed.replace_range(at..at + 1, replacement);
        Some(key)
    }

    /// Chaos hook: arms a one-shot [`EvalFault`] against the next cold
    /// evaluation's first attempt.
    pub fn arm_eval_fault(&mut self, fault: EvalFault) {
        self.armed_fault = Some(fault);
    }

    /// Fetches the compiled design for `spec`, compiling (and caching)
    /// it on a miss. `Err` is the compile panic's message.
    fn design_for(&mut self, spec: &EvalSpec) -> Result<CompiledDesign, String> {
        let dkey = spec.design_key();
        if let Some(d) = self.designs.get(&dkey) {
            self.stats.bump(ServiceCounter::DesignHits);
            return Ok(d.clone());
        }
        self.stats.bump(ServiceCounter::DesignMisses);
        let spec_copy = *spec;
        match catch_unwind(AssertUnwindSafe(move || compile(&spec_copy))) {
            Ok(design) => {
                let evicted = self.designs.insert(dkey, design.clone());
                self.stats
                    .add(ServiceCounter::DesignEvictions, evicted as u64);
                Ok(design)
            }
            Err(panic) => Err(panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "compile panicked".to_owned())),
        }
    }

    /// Processes one batch of request lines to completion.
    pub fn process_batch(&mut self, lines: &[String]) -> io::Result<BatchOutput> {
        self.stats.observe_queue_depth(lines.len());
        let mut responses: Vec<Response> = Vec::with_capacity(lines.len());
        let mut pending: BTreeMap<CacheKey, Pending> = BTreeMap::new();
        let mut stats_ids: Vec<u64> = Vec::new();
        let mut shutdown = false;
        // Distinct would-be-cold keys this batch, *including* shed and
        // deadline-rejected ones: the governor's demand signal must see
        // the arriving load, not just the admitted share, or shedding
        // would zero the signal and the ladder would flap.
        let mut cold_keys: BTreeSet<CacheKey> = BTreeSet::new();
        let level = self.governor.level();

        for line in lines {
            self.stats.bump(ServiceCounter::Requests);
            let default_id = self.seq;
            self.seq += 1;
            match parse_request(line, default_id) {
                Err(err) => {
                    self.stats.bump(ServiceCounter::Errors);
                    responses.push(Response {
                        id: default_id,
                        body: format!("\"status\":\"error\",\"error\":{}", json_str(&err)),
                    });
                }
                Ok(Request::Stats { id }) => {
                    self.stats.bump(ServiceCounter::StatsRequests);
                    stats_ids.push(id);
                }
                Ok(Request::Shutdown { id }) => {
                    shutdown = true;
                    responses.push(Response {
                        id,
                        body: "\"status\":\"ok\",\"shutdown\":true".to_owned(),
                    });
                }
                Ok(Request::Eval {
                    id,
                    spec,
                    priority,
                    deadline_ms,
                }) => {
                    self.stats.bump(ServiceCounter::Evals);
                    let key = spec.key();
                    let probe = Instant::now();
                    // Probe (and verify) the cache before admission, so
                    // a corrupt entry is quarantined whatever the level.
                    let cached = match self.results.get(&key) {
                        Some(sealed) => match open(sealed, self.config.verify_reads) {
                            Ok(body) => Some(body.to_owned()),
                            Err(_) => {
                                // Bit-rot: drop the entry so it
                                // recomputes as a miss, never served.
                                self.stats.bump(ServiceCounter::CacheCorrupt);
                                self.results.remove(&key);
                                None
                            }
                        },
                        None => None,
                    };
                    if let Some(body) = cached {
                        if level.serves_hits() {
                            self.stats.bump(ServiceCounter::Hits);
                            // Clamp to ≥ 1ns so a sub-tick probe cannot
                            // zero the mean and void the speedup figure.
                            self.stats
                                .hit_latency
                                .record((probe.elapsed().as_nanos() as u64).max(1));
                            responses.push(Response { id, body });
                        } else {
                            self.stats.bump(ServiceCounter::Shed);
                            responses.push(Response {
                                id,
                                body: self.shed_body(level),
                            });
                        }
                    } else if let Some(p) = pending.get_mut(&key) {
                        // Batch coalescing: same content, one compute.
                        self.stats.bump(ServiceCounter::Hits);
                        self.stats
                            .hit_latency
                            .record((probe.elapsed().as_nanos() as u64).max(1));
                        p.ids.push(id);
                    } else {
                        cold_keys.insert(key);
                        if !level.admits_miss(priority == Priority::High) {
                            self.stats.bump(ServiceCounter::Shed);
                            responses.push(Response {
                                id,
                                body: self.shed_body(level),
                            });
                        } else if deadline_ms
                            .is_some_and(|budget| Engine::estimated_ms(&spec) > budget)
                        {
                            // The cost model says this miss cannot make
                            // its deadline: reject before spending work.
                            self.stats.bump(ServiceCounter::DeadlineRejected);
                            responses.push(Response {
                                id,
                                body: format!(
                                    "\"status\":\"deadline\",\"estimated_ms\":{},\
                                     \"deadline_ms\":{}",
                                    Engine::estimated_ms(&spec),
                                    deadline_ms.expect("deadline present"),
                                ),
                            });
                        } else {
                            self.stats.bump(ServiceCounter::Misses);
                            pending.insert(
                                key,
                                Pending {
                                    spec,
                                    ids: vec![id],
                                },
                            );
                        }
                    }
                }
            }
        }

        self.run_pending(pending, &mut responses)?;

        // Close the governor's estimator window on this batch's demand.
        if let Some(t) = self.governor.observe_batch(cold_keys.len() as u64) {
            self.stats.bump(if t.is_escalation() {
                ServiceCounter::GovernorEscalations
            } else {
                ServiceCounter::GovernorDeescalations
            });
        }

        // Stats responses last, so they see the whole batch's counters.
        for id in stats_ids {
            responses.push(Response {
                id,
                body: format!("\"status\":\"ok\",\"stats\":{}", self.stats.json()),
            });
        }
        responses.sort_by_key(|r| r.id);
        Ok(BatchOutput {
            responses,
            shutdown,
        })
    }

    /// The deterministic body of a shed response at `level`.
    fn shed_body(&self, level: ServiceLevel) -> String {
        format!(
            "\"status\":\"shed\",\"level\":\"{}\",\"retry_after_batches\":{}",
            level.name(),
            self.governor.retry_after(),
        )
    }

    /// Compiles, evaluates, journals and answers every pending miss.
    fn run_pending(
        &mut self,
        pending: BTreeMap<CacheKey, Pending>,
        responses: &mut Vec<Response>,
    ) -> io::Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        // Design tier first, in canonical key order: one compile per
        // unique design, each isolated against panics.
        let mut ready: Vec<(CacheKey, Pending, CompiledDesign, Instant)> = Vec::new();
        for (key, p) in pending {
            let started = Instant::now();
            match self.design_for(&p.spec) {
                Ok(design) => ready.push((key, p, design, started)),
                Err(detail) => {
                    self.stats
                        .add(ServiceCounter::Quarantined, p.ids.len() as u64);
                    let body = format!(
                        "\"status\":\"quarantined\",\"key\":\"{}\",\"kind\":\"panic\",\
                         \"attempts\":1,\"detail\":{}",
                        key.hex(),
                        json_str(&detail)
                    );
                    for id in p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
            }
        }
        if ready.is_empty() {
            return Ok(());
        }

        // Evaluation batch through the hardened work-pull executor:
        // catch_unwind isolation, wall-clock watchdog, bounded retries,
        // quarantine instead of a dead daemon. Per-job durations ride
        // out through a side table keyed by job index.
        let durations: Arc<Mutex<BTreeMap<usize, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let armed = self.armed_fault.take();
        let watchdog = self.config.watchdog;
        let jobs: Vec<TrialJob> = ready
            .iter()
            .enumerate()
            .map(|(pos, (_, p, design, _))| {
                let spec = p.spec;
                let design = design.clone();
                let durations = Arc::clone(&durations);
                // An armed chaos fault hits the batch's first cold job,
                // first attempt only; retries run clean.
                let fault = if pos == 0 { armed } else { None };
                let attempts_seen = Arc::new(AtomicU32::new(0));
                let job: TrialJob = Arc::new(move || {
                    let attempt = attempts_seen.fetch_add(1, Ordering::SeqCst);
                    if attempt == 0 {
                        match fault {
                            Some(EvalFault::Hang) => {
                                // Sleep well past the watchdog; the
                                // executor abandons this attempt and the
                                // detached thread's result is discarded.
                                std::thread::sleep(
                                    watchdog.saturating_mul(40).max(Duration::from_secs(2)),
                                );
                                return Err("chaos: hung attempt abandoned".to_owned());
                            }
                            Some(EvalFault::Stall(delay)) => {
                                std::thread::sleep(delay);
                                return Err("chaos: injected stall".to_owned());
                            }
                            None => {}
                        }
                    }
                    let started = Instant::now();
                    let body = evaluate(&design, &spec);
                    durations
                        .lock()
                        .expect("duration table")
                        .insert(pos, started.elapsed().as_nanos() as u64);
                    Ok(body)
                });
                job
            })
            .collect();
        let outcome = run_hardened(HardenedSpec {
            jobs,
            threads: self.config.threads,
            timeout: self.config.watchdog,
            max_attempts: self.config.max_attempts,
            retry: self.config.retry,
            retry_hangs: self.config.retry_hangs,
            completed: BTreeMap::new(),
            checkpoint: None,
            stop_after: None,
        })?;
        self.stats.add(ServiceCounter::Retries, outcome.retries);

        let mut quarantined: BTreeMap<usize, &timber_resilience::QuarantineEntry> =
            outcome.quarantined.iter().map(|q| (q.index, q)).collect();
        let durations = durations.lock().expect("duration table");
        for (pos, ((key, p, _, started), payload)) in
            ready.iter().zip(outcome.payloads.iter()).enumerate()
        {
            match payload {
                Some(body) => {
                    // Compile share + evaluation, one cold sample per
                    // unique key.
                    let eval_ns = durations.get(&pos).copied().unwrap_or(0);
                    let compile_ns = started.elapsed().as_nanos() as u64;
                    self.stats
                        .miss_latency
                        .record(compile_ns.max(eval_ns).max(1));
                    // Seal once; the cache and journal both store the
                    // checksummed form so every later read verifies.
                    let sealed = seal(body);
                    if let Some(journal) = &mut self.journal {
                        journal.record(&key.hex(), &sealed)?;
                    }
                    let evicted = self.results.insert(*key, sealed);
                    self.stats.add(ServiceCounter::Evictions, evicted as u64);
                    for &id in &p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
                None => {
                    let (kind, attempts, detail) = match quarantined.remove(&pos) {
                        Some(q) => (q.kind.name(), q.attempts, q.detail.clone()),
                        None => ("panic", 1, "evaluation did not complete".to_owned()),
                    };
                    self.stats
                        .add(ServiceCounter::Quarantined, p.ids.len() as u64);
                    let body = format!(
                        "\"status\":\"quarantined\",\"key\":\"{}\",\"kind\":\"{kind}\",\
                         \"attempts\":{attempts},\"detail\":{}",
                        key.hex(),
                        json_str(&detail)
                    );
                    for &id in &p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EngineConfig {
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        }
    }

    fn lines(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes() {
        let mut e = Engine::new(tiny()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        let warm = e
            .process_batch(&lines(&[r#"{"id":2,"design":"rca16"}"#]))
            .unwrap();
        assert_eq!(cold.responses.len(), 1);
        assert_eq!(cold.responses[0].body, warm.responses[0].body);
        assert_eq!(
            cold.responses[0].render(),
            "{\"id\":1,".to_owned() + &cold.responses[0].body + "}"
        );
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
        assert_eq!(e.stats().counter(ServiceCounter::Misses), 1);
        assert!(e.stats().hit_speedup() > 1.0);
    }

    #[test]
    fn duplicate_keys_in_one_batch_coalesce() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":1,"design":"rca16"}"#,
                r#"{"id":2,"design":"rca16"}"#,
                r#"{"id":3,"design":"rca16","seed":8}"#,
            ]))
            .unwrap();
        assert_eq!(out.responses.len(), 3);
        assert_eq!(out.responses[0].body, out.responses[1].body);
        assert_ne!(out.responses[0].body, out.responses[2].body);
        assert_eq!(e.stats().counter(ServiceCounter::Misses), 2);
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
        // One design, compiled once, reused for the second unique spec.
        assert_eq!(e.stats().counter(ServiceCounter::DesignMisses), 1);
        assert_eq!(e.stats().counter(ServiceCounter::DesignHits), 1);
    }

    #[test]
    fn poison_is_quarantined_and_the_engine_survives() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":1,"design":"poison"}"#,
                r#"{"id":2,"design":"rca16"}"#,
            ]))
            .unwrap();
        assert_eq!(out.responses.len(), 2);
        assert!(out.responses[0].body.contains("\"status\":\"quarantined\""));
        assert!(out.responses[0].body.contains("poison"));
        assert!(out.responses[1].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Quarantined), 1);
        // The daemon keeps serving afterwards.
        let again = e
            .process_batch(&lines(&[r#"{"id":3,"design":"rca16"}"#]))
            .unwrap();
        assert!(again.responses[0].body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn malformed_and_unknown_lines_answer_deterministic_errors() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[r#"{"design":"rca16","frob":1}"#, "not json"]))
            .unwrap();
        assert_eq!(out.responses.len(), 2);
        for r in &out.responses {
            assert!(r.body.contains("\"status\":\"error\""), "{}", r.body);
        }
        assert_eq!(e.stats().counter(ServiceCounter::Errors), 2);
        assert_eq!(e.stats().counter(ServiceCounter::Evals), 0);
    }

    #[test]
    fn responses_sort_by_id_whatever_the_arrival_order() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":9,"design":"rca16"}"#,
                r#"{"id":1,"design":"ks16"}"#,
                r#"{"id":5,"op":"stats"}"#,
            ]))
            .unwrap();
        let ids: Vec<u64> = out.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn shutdown_flag_and_stats_body() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"op":"stats","id":1}"#,
                r#"{"op":"shutdown","id":2}"#,
            ]))
            .unwrap();
        assert!(out.shutdown);
        assert!(out.responses[0].body.contains("\"stats\":{\"counters\""));
        assert!(out.responses[1].body.contains("\"shutdown\":true"));
    }

    #[test]
    fn journal_resume_preloads_the_cache() {
        let mut path = std::env::temp_dir();
        path.push(format!("timber-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny();
        cfg.journal = Some(path.clone());
        let mut e = Engine::new(cfg.clone()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        drop(e);

        cfg.resume = true;
        let mut e2 = Engine::new(cfg).unwrap();
        assert_eq!(e2.stats().counter(ServiceCounter::Resumed), 1);
        let warm = e2
            .process_batch(&lines(&[r#"{"id":7,"design":"rca16"}"#]))
            .unwrap();
        assert_eq!(warm.responses[0].body, cold.responses[0].body);
        assert_eq!(e2.stats().counter(ServiceCounter::Hits), 1);
        assert_eq!(e2.stats().counter(ServiceCounter::Misses), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_assigns_sequence_ids_when_absent() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[r#"{"op":"stats"}"#, r#"{"op":"stats"}"#]))
            .unwrap();
        let ids: Vec<u64> = out.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn corrupted_cache_entry_is_detected_and_recomputed_never_served() {
        let mut e = Engine::new(tiny()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        let key = e.corrupt_cached_result(0, 13).expect("one cached entry");
        let again = e
            .process_batch(&lines(&[r#"{"id":2,"design":"rca16"}"#]))
            .unwrap();
        // Same bytes as the uncorrupted run: recomputed, not served.
        assert_eq!(again.responses[0].body, cold.responses[0].body);
        assert_eq!(e.stats().counter(ServiceCounter::CacheCorrupt), 1);
        assert_eq!(e.stats().counter(ServiceCounter::Misses), 2);
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 0);
        assert_eq!(key, {
            let Request::Eval { spec, .. } = parse_request(r#"{"design":"rca16"}"#, 0).unwrap()
            else {
                panic!("eval")
            };
            spec.key()
        });
    }

    #[test]
    fn sabotaged_verification_serves_the_corruption() {
        // The negative control the chaos campaign relies on: with
        // verify_reads off, the corrupted bytes flow straight out.
        let mut cfg = tiny();
        cfg.verify_reads = false;
        let mut e = Engine::new(cfg).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        e.corrupt_cached_result(0, 13).expect("one cached entry");
        let again = e
            .process_batch(&lines(&[r#"{"id":2,"design":"rca16"}"#]))
            .unwrap();
        assert_ne!(again.responses[0].body, cold.responses[0].body);
        assert_eq!(e.stats().counter(ServiceCounter::CacheCorrupt), 0);
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
    }

    #[test]
    fn governor_sheds_and_recovers() {
        let mut cfg = tiny();
        cfg.governor = crate::governor::ServiceGovernorConfig {
            escalate_backlog: 1,
            deescalate_backlog: 0,
            hot_batches: 1,
            hold_batches: 1,
        };
        let mut e = Engine::new(cfg).unwrap();
        // Batch 1: cold demand 1 ≥ 1 escalates to shed-low after it.
        let first = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        assert!(first.responses[0].body.contains("\"status\":\"ok\""));
        assert_eq!(e.service_level(), ServiceLevel::ShedLow);
        // Batch 2: a low-priority miss is shed; the hit still serves.
        let second = e
            .process_batch(&lines(&[
                r#"{"id":2,"design":"ks16","priority":"low"}"#,
                r#"{"id":3,"design":"rca16"}"#,
            ]))
            .unwrap();
        assert!(
            second.responses[0].body.contains("\"status\":\"shed\""),
            "{}",
            second.responses[0].body
        );
        assert!(second.responses[0].body.contains("\"level\":\"shed-low\""));
        assert!(second.responses[1].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Shed), 1);
        assert_eq!(e.stats().counter(ServiceCounter::GovernorEscalations), 2);
        // Idle batches walk the ladder back down.
        for _ in 0..8 {
            let _ = e.process_batch(&[]).unwrap();
        }
        assert_eq!(e.service_level(), ServiceLevel::Nominal);
        assert!(e.stats().counter(ServiceCounter::GovernorDeescalations) >= 2);
    }

    #[test]
    fn deadline_screening_rejects_unaffordable_misses_but_serves_hits() {
        let mut e = Engine::new(tiny()).unwrap();
        // Defaults: trials=2, cycles=400 → 800 cycles → 8 ms estimate.
        let out = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16","deadline_ms":2}"#]))
            .unwrap();
        assert!(
            out.responses[0].body.contains("\"status\":\"deadline\""),
            "{}",
            out.responses[0].body
        );
        assert!(out.responses[0].body.contains("\"estimated_ms\":8"));
        assert_eq!(e.stats().counter(ServiceCounter::DeadlineRejected), 1);
        // A generous deadline admits; once cached, even a tight one hits.
        let ok = e
            .process_batch(&lines(&[
                r#"{"id":2,"design":"rca16","deadline_ms":60000}"#,
            ]))
            .unwrap();
        assert!(ok.responses[0].body.contains("\"status\":\"ok\""));
        let warm = e
            .process_batch(&lines(&[r#"{"id":3,"design":"rca16","deadline_ms":2}"#]))
            .unwrap();
        assert!(warm.responses[0].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
    }

    #[test]
    fn armed_stall_fault_is_retried_and_counted() {
        let mut e = Engine::new(tiny()).unwrap();
        e.arm_eval_fault(EvalFault::Stall(Duration::from_millis(5)));
        let out = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        assert!(out.responses[0].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Retries), 1);
        // The fault was one-shot: a fresh miss runs clean.
        let next = e
            .process_batch(&lines(&[r#"{"id":2,"design":"ks16"}"#]))
            .unwrap();
        assert!(next.responses[0].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Retries), 1);
    }

    #[test]
    fn armed_hang_fault_recovers_when_hang_retries_are_on() {
        let mut cfg = tiny();
        cfg.watchdog = Duration::from_millis(100);
        cfg.retry_hangs = true;
        let mut e = Engine::new(cfg).unwrap();
        e.arm_eval_fault(EvalFault::Hang);
        let out = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        assert!(
            out.responses[0].body.contains("\"status\":\"ok\""),
            "{}",
            out.responses[0].body
        );
        assert_eq!(e.stats().counter(ServiceCounter::Retries), 1);
        assert_eq!(e.stats().counter(ServiceCounter::Quarantined), 0);
    }

    #[test]
    fn torn_journal_tail_is_counted_and_resume_still_works() {
        let mut path = std::env::temp_dir();
        path.push(format!("timber-serve-torn-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny();
        cfg.journal = Some(path.clone());
        let mut e = Engine::new(cfg.clone()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        drop(e);
        // Tear a partial append onto the tail, as a kill would.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "deadbeef\t{{\"tru").unwrap();
        }
        cfg.resume = true;
        let mut e2 = Engine::new(cfg).unwrap();
        assert_eq!(e2.stats().counter(ServiceCounter::JournalTornLines), 1);
        assert_eq!(e2.stats().counter(ServiceCounter::Resumed), 1);
        let warm = e2
            .process_batch(&lines(&[r#"{"id":7,"design":"rca16"}"#]))
            .unwrap();
        assert_eq!(warm.responses[0].body, cold.responses[0].body);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_journal_record_is_dropped_and_recomputed_on_resume() {
        let mut path = std::env::temp_dir();
        path.push(format!("timber-serve-rot-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny();
        cfg.journal = Some(path.clone());
        let mut e = Engine::new(cfg.clone()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        drop(e);
        // Flip one payload byte on disk (past key, tab and seal prefix).
        let mut bytes = std::fs::read(&path).unwrap();
        let tab = bytes.iter().position(|&b| b == b'\t').unwrap();
        let at = tab + 1 + SEAL_PREFIX_LEN + 3;
        bytes[at] = if bytes[at] == b'#' { b'@' } else { b'#' };
        std::fs::write(&path, &bytes).unwrap();

        cfg.resume = true;
        let mut e2 = Engine::new(cfg).unwrap();
        assert_eq!(e2.stats().counter(ServiceCounter::JournalCorrupt), 1);
        assert_eq!(e2.stats().counter(ServiceCounter::Resumed), 0);
        let again = e2
            .process_batch(&lines(&[r#"{"id":7,"design":"rca16"}"#]))
            .unwrap();
        // Recomputed to the exact uncorrupted bytes, as a miss.
        assert_eq!(again.responses[0].body, cold.responses[0].body);
        assert_eq!(e2.stats().counter(ServiceCounter::Misses), 1);
        let _ = std::fs::remove_file(&path);
    }
}
