//! The serving engine: content-addressed request processing.
//!
//! One [`Engine`] owns the two cache tiers, the durability journal and
//! the service telemetry, and processes request batches:
//!
//! 1. every line is parsed ([`crate::spec::parse_request`]); malformed
//!    lines become deterministic `status:"error"` responses;
//! 2. each evaluation request probes the result cache by content key —
//!    a hit is answered immediately, duplicate keys within the batch
//!    coalesce onto one pending evaluation (and count as hits);
//! 3. unique missing designs compile once (design tier), each compile
//!    isolated with `catch_unwind` so a poisoned request quarantines
//!    instead of killing the daemon;
//! 4. the remaining evaluations run as one hardened work-pull batch
//!    (`run_hardened`: watchdog, bounded retries, quarantine ledger);
//! 5. new results are journalled (crash-safe, torn-line tolerant) and
//!    inserted in canonical key order, then responses are emitted
//!    sorted by request id.
//!
//! Determinism: response bodies are pure functions of specs, cache
//! trajectories are pure functions of the request stream, and only the
//! `stats` operation exposes wall-clock latency (in its own object).

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use timber_resilience::{read_journal, run_hardened, HardenedSpec, JournalWriter, TrialJob};
use timber_telemetry::{ServiceCounter, ServiceStats};

use crate::cache::LruCache;
use crate::compile::{compile, evaluate, CompiledDesign};
use crate::key::CacheKey;
use crate::spec::{parse_request, EvalSpec, Request};

/// Default result-tier capacity (full response bodies).
pub const DEFAULT_RESULT_CAPACITY: usize = 1024;
/// Default design-tier capacity (compiled netlist artifacts).
pub const DEFAULT_DESIGN_CAPACITY: usize = 64;
/// Per-attempt watchdog for one evaluation job.
const WATCHDOG: Duration = Duration::from_secs(30);
/// Attempts per evaluation before quarantine.
const MAX_ATTEMPTS: u32 = 2;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Result-tier capacity.
    pub result_capacity: usize,
    /// Design-tier capacity.
    pub design_capacity: usize,
    /// Worker threads for cache-miss batches (0 = all cores). Never
    /// changes any response byte.
    pub threads: usize,
    /// Append-only durability journal (`keyhex\tbody` lines).
    pub journal: Option<PathBuf>,
    /// Preload the journal into the result cache at startup.
    pub resume: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            result_capacity: DEFAULT_RESULT_CAPACITY,
            design_capacity: DEFAULT_DESIGN_CAPACITY,
            threads: 0,
            journal: None,
            resume: false,
        }
    }
}

/// One rendered response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Brace-free body fields (everything after `"id":N,`).
    pub body: String,
}

impl Response {
    /// The full single-line JSON document.
    pub fn render(&self) -> String {
        format!("{{\"id\":{},{}}}", self.id, self.body)
    }
}

/// What one batch produced.
#[derive(Debug)]
pub struct BatchOutput {
    /// Responses sorted by request id.
    pub responses: Vec<Response>,
    /// True if the batch contained a shutdown request.
    pub shutdown: bool,
}

fn json_str(s: &str) -> String {
    serde_json::Value::String(s.to_owned()).to_string()
}

/// A pending cold evaluation: the spec plus every request id waiting on
/// its key.
struct Pending {
    spec: EvalSpec,
    ids: Vec<u64>,
}

/// The persistent serving engine.
pub struct Engine {
    config: EngineConfig,
    results: LruCache<String>,
    designs: LruCache<CompiledDesign>,
    journal: Option<JournalWriter>,
    stats: ServiceStats,
    /// Running id handed to requests that carry none.
    seq: u64,
}

impl Engine {
    /// Builds an engine, replaying the journal into the result cache
    /// when `resume` is set.
    pub fn new(config: EngineConfig) -> io::Result<Engine> {
        let mut stats = ServiceStats::new();
        let mut results = LruCache::new(config.result_capacity);
        if let (Some(path), true) = (&config.journal, config.resume) {
            if path.exists() {
                // Last record wins per key, in file order — exactly the
                // state the journal writer left behind.
                let mut resumed: BTreeSet<CacheKey> = BTreeSet::new();
                for (key, body) in read_journal(path)? {
                    if let Some(key) = CacheKey::from_hex(&key) {
                        resumed.insert(key);
                        results.insert(key, body);
                    }
                }
                stats.add(ServiceCounter::Resumed, resumed.len() as u64);
            }
        }
        let journal = match &config.journal {
            Some(path) => Some(JournalWriter::append(path)?),
            None => None,
        };
        Ok(Engine {
            designs: LruCache::new(config.design_capacity),
            config,
            results,
            journal,
            stats,
            seq: 0,
        })
    }

    /// The engine's telemetry.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Result-tier occupancy (diagnostics).
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }

    /// Fetches the compiled design for `spec`, compiling (and caching)
    /// it on a miss. `Err` is the compile panic's message.
    fn design_for(&mut self, spec: &EvalSpec) -> Result<CompiledDesign, String> {
        let dkey = spec.design_key();
        if let Some(d) = self.designs.get(&dkey) {
            self.stats.bump(ServiceCounter::DesignHits);
            return Ok(d.clone());
        }
        self.stats.bump(ServiceCounter::DesignMisses);
        let spec_copy = *spec;
        match catch_unwind(AssertUnwindSafe(move || compile(&spec_copy))) {
            Ok(design) => {
                let evicted = self.designs.insert(dkey, design.clone());
                self.stats
                    .add(ServiceCounter::DesignEvictions, evicted as u64);
                Ok(design)
            }
            Err(panic) => Err(panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "compile panicked".to_owned())),
        }
    }

    /// Processes one batch of request lines to completion.
    pub fn process_batch(&mut self, lines: &[String]) -> io::Result<BatchOutput> {
        self.stats.observe_queue_depth(lines.len());
        let mut responses: Vec<Response> = Vec::with_capacity(lines.len());
        let mut pending: BTreeMap<CacheKey, Pending> = BTreeMap::new();
        let mut stats_ids: Vec<u64> = Vec::new();
        let mut shutdown = false;

        for line in lines {
            self.stats.bump(ServiceCounter::Requests);
            let default_id = self.seq;
            self.seq += 1;
            match parse_request(line, default_id) {
                Err(err) => {
                    self.stats.bump(ServiceCounter::Errors);
                    responses.push(Response {
                        id: default_id,
                        body: format!("\"status\":\"error\",\"error\":{}", json_str(&err)),
                    });
                }
                Ok(Request::Stats { id }) => {
                    self.stats.bump(ServiceCounter::StatsRequests);
                    stats_ids.push(id);
                }
                Ok(Request::Shutdown { id }) => {
                    shutdown = true;
                    responses.push(Response {
                        id,
                        body: "\"status\":\"ok\",\"shutdown\":true".to_owned(),
                    });
                }
                Ok(Request::Eval { id, spec }) => {
                    self.stats.bump(ServiceCounter::Evals);
                    let key = spec.key();
                    let probe = Instant::now();
                    if let Some(body) = self.results.get(&key) {
                        let body = body.clone();
                        self.stats.bump(ServiceCounter::Hits);
                        // Clamp to ≥ 1ns so a sub-tick probe cannot
                        // zero the mean and void the speedup figure.
                        self.stats
                            .hit_latency
                            .record((probe.elapsed().as_nanos() as u64).max(1));
                        responses.push(Response { id, body });
                    } else if let Some(p) = pending.get_mut(&key) {
                        // Batch coalescing: same content, one compute.
                        self.stats.bump(ServiceCounter::Hits);
                        self.stats
                            .hit_latency
                            .record((probe.elapsed().as_nanos() as u64).max(1));
                        p.ids.push(id);
                    } else {
                        self.stats.bump(ServiceCounter::Misses);
                        pending.insert(
                            key,
                            Pending {
                                spec,
                                ids: vec![id],
                            },
                        );
                    }
                }
            }
        }

        self.run_pending(pending, &mut responses)?;

        // Stats responses last, so they see the whole batch's counters.
        for id in stats_ids {
            responses.push(Response {
                id,
                body: format!("\"status\":\"ok\",\"stats\":{}", self.stats.json()),
            });
        }
        responses.sort_by_key(|r| r.id);
        Ok(BatchOutput {
            responses,
            shutdown,
        })
    }

    /// Compiles, evaluates, journals and answers every pending miss.
    fn run_pending(
        &mut self,
        pending: BTreeMap<CacheKey, Pending>,
        responses: &mut Vec<Response>,
    ) -> io::Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        // Design tier first, in canonical key order: one compile per
        // unique design, each isolated against panics.
        let mut ready: Vec<(CacheKey, Pending, CompiledDesign, Instant)> = Vec::new();
        for (key, p) in pending {
            let started = Instant::now();
            match self.design_for(&p.spec) {
                Ok(design) => ready.push((key, p, design, started)),
                Err(detail) => {
                    self.stats
                        .add(ServiceCounter::Quarantined, p.ids.len() as u64);
                    let body = format!(
                        "\"status\":\"quarantined\",\"key\":\"{}\",\"kind\":\"panic\",\
                         \"attempts\":1,\"detail\":{}",
                        key.hex(),
                        json_str(&detail)
                    );
                    for id in p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
            }
        }
        if ready.is_empty() {
            return Ok(());
        }

        // Evaluation batch through the hardened work-pull executor:
        // catch_unwind isolation, wall-clock watchdog, bounded retries,
        // quarantine instead of a dead daemon. Per-job durations ride
        // out through a side table keyed by job index.
        let durations: Arc<Mutex<BTreeMap<usize, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let jobs: Vec<TrialJob> = ready
            .iter()
            .enumerate()
            .map(|(pos, (_, p, design, _))| {
                let spec = p.spec;
                let design = design.clone();
                let durations = Arc::clone(&durations);
                let job: TrialJob = Arc::new(move || {
                    let started = Instant::now();
                    let body = evaluate(&design, &spec);
                    durations
                        .lock()
                        .expect("duration table")
                        .insert(pos, started.elapsed().as_nanos() as u64);
                    Ok(body)
                });
                job
            })
            .collect();
        let outcome = run_hardened(HardenedSpec {
            jobs,
            threads: self.config.threads,
            timeout: WATCHDOG,
            max_attempts: MAX_ATTEMPTS,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            completed: BTreeMap::new(),
            checkpoint: None,
            stop_after: None,
        })?;

        let mut quarantined: BTreeMap<usize, &timber_resilience::QuarantineEntry> =
            outcome.quarantined.iter().map(|q| (q.index, q)).collect();
        let durations = durations.lock().expect("duration table");
        for (pos, ((key, p, _, started), payload)) in
            ready.iter().zip(outcome.payloads.iter()).enumerate()
        {
            match payload {
                Some(body) => {
                    // Compile share + evaluation, one cold sample per
                    // unique key.
                    let eval_ns = durations.get(&pos).copied().unwrap_or(0);
                    let compile_ns = started.elapsed().as_nanos() as u64;
                    self.stats
                        .miss_latency
                        .record(compile_ns.max(eval_ns).max(1));
                    if let Some(journal) = &mut self.journal {
                        journal.record(&key.hex(), body)?;
                    }
                    let evicted = self.results.insert(*key, body.clone());
                    self.stats.add(ServiceCounter::Evictions, evicted as u64);
                    for &id in &p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
                None => {
                    let (kind, attempts, detail) = match quarantined.remove(&pos) {
                        Some(q) => (q.kind.name(), q.attempts, q.detail.clone()),
                        None => ("panic", 1, "evaluation did not complete".to_owned()),
                    };
                    self.stats
                        .add(ServiceCounter::Quarantined, p.ids.len() as u64);
                    let body = format!(
                        "\"status\":\"quarantined\",\"key\":\"{}\",\"kind\":\"{kind}\",\
                         \"attempts\":{attempts},\"detail\":{}",
                        key.hex(),
                        json_str(&detail)
                    );
                    for &id in &p.ids {
                        responses.push(Response {
                            id,
                            body: body.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EngineConfig {
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        }
    }

    fn lines(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes() {
        let mut e = Engine::new(tiny()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        let warm = e
            .process_batch(&lines(&[r#"{"id":2,"design":"rca16"}"#]))
            .unwrap();
        assert_eq!(cold.responses.len(), 1);
        assert_eq!(cold.responses[0].body, warm.responses[0].body);
        assert_eq!(
            cold.responses[0].render(),
            "{\"id\":1,".to_owned() + &cold.responses[0].body + "}"
        );
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
        assert_eq!(e.stats().counter(ServiceCounter::Misses), 1);
        assert!(e.stats().hit_speedup() > 1.0);
    }

    #[test]
    fn duplicate_keys_in_one_batch_coalesce() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":1,"design":"rca16"}"#,
                r#"{"id":2,"design":"rca16"}"#,
                r#"{"id":3,"design":"rca16","seed":8}"#,
            ]))
            .unwrap();
        assert_eq!(out.responses.len(), 3);
        assert_eq!(out.responses[0].body, out.responses[1].body);
        assert_ne!(out.responses[0].body, out.responses[2].body);
        assert_eq!(e.stats().counter(ServiceCounter::Misses), 2);
        assert_eq!(e.stats().counter(ServiceCounter::Hits), 1);
        // One design, compiled once, reused for the second unique spec.
        assert_eq!(e.stats().counter(ServiceCounter::DesignMisses), 1);
        assert_eq!(e.stats().counter(ServiceCounter::DesignHits), 1);
    }

    #[test]
    fn poison_is_quarantined_and_the_engine_survives() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":1,"design":"poison"}"#,
                r#"{"id":2,"design":"rca16"}"#,
            ]))
            .unwrap();
        assert_eq!(out.responses.len(), 2);
        assert!(out.responses[0].body.contains("\"status\":\"quarantined\""));
        assert!(out.responses[0].body.contains("poison"));
        assert!(out.responses[1].body.contains("\"status\":\"ok\""));
        assert_eq!(e.stats().counter(ServiceCounter::Quarantined), 1);
        // The daemon keeps serving afterwards.
        let again = e
            .process_batch(&lines(&[r#"{"id":3,"design":"rca16"}"#]))
            .unwrap();
        assert!(again.responses[0].body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn malformed_and_unknown_lines_answer_deterministic_errors() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[r#"{"design":"rca16","frob":1}"#, "not json"]))
            .unwrap();
        assert_eq!(out.responses.len(), 2);
        for r in &out.responses {
            assert!(r.body.contains("\"status\":\"error\""), "{}", r.body);
        }
        assert_eq!(e.stats().counter(ServiceCounter::Errors), 2);
        assert_eq!(e.stats().counter(ServiceCounter::Evals), 0);
    }

    #[test]
    fn responses_sort_by_id_whatever_the_arrival_order() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"id":9,"design":"rca16"}"#,
                r#"{"id":1,"design":"ks16"}"#,
                r#"{"id":5,"op":"stats"}"#,
            ]))
            .unwrap();
        let ids: Vec<u64> = out.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn shutdown_flag_and_stats_body() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[
                r#"{"op":"stats","id":1}"#,
                r#"{"op":"shutdown","id":2}"#,
            ]))
            .unwrap();
        assert!(out.shutdown);
        assert!(out.responses[0].body.contains("\"stats\":{\"counters\""));
        assert!(out.responses[1].body.contains("\"shutdown\":true"));
    }

    #[test]
    fn journal_resume_preloads_the_cache() {
        let mut path = std::env::temp_dir();
        path.push(format!("timber-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny();
        cfg.journal = Some(path.clone());
        let mut e = Engine::new(cfg.clone()).unwrap();
        let cold = e
            .process_batch(&lines(&[r#"{"id":1,"design":"rca16"}"#]))
            .unwrap();
        drop(e);

        cfg.resume = true;
        let mut e2 = Engine::new(cfg).unwrap();
        assert_eq!(e2.stats().counter(ServiceCounter::Resumed), 1);
        let warm = e2
            .process_batch(&lines(&[r#"{"id":7,"design":"rca16"}"#]))
            .unwrap();
        assert_eq!(warm.responses[0].body, cold.responses[0].body);
        assert_eq!(e2.stats().counter(ServiceCounter::Hits), 1);
        assert_eq!(e2.stats().counter(ServiceCounter::Misses), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_assigns_sequence_ids_when_absent() {
        let mut e = Engine::new(tiny()).unwrap();
        let out = e
            .process_batch(&lines(&[r#"{"op":"stats"}"#, r#"{"op":"stats"}"#]))
            .unwrap();
        let ids: Vec<u64> = out.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
