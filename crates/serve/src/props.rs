//! Property-based tests for the cache layer's load-bearing claims:
//! canonicalization is injective over distinct specs and stable under
//! request-field reordering, and a cache hit serves the exact bytes the
//! cold miss produced — for every scheme in the registry.

#![cfg(test)]

use proptest::prelude::*;
use timber_resilience::StormScenario;
use timber_schemes::SchemeId;

use crate::engine::{Engine, EngineConfig};
use crate::integrity::{open, seal};
use crate::spec::{parse_request, DesignId, EvalSpec, Request};

/// Checking percentages drawn in properties (all valid, all snappable).
const PCTS: [f64; 6] = [10.0, 20.0, 24.0, 25.5, 30.0, 50.0];

type Shape = (usize, usize, usize, usize, u8, u8);
type Budget = (usize, u64, u64);

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        0usize..7,
        0usize..8,
        0usize..4,
        0usize..PCTS.len(),
        0u8..4,
        1u8..4,
    )
}

fn budget_strategy() -> impl Strategy<Value = Budget> {
    (1usize..5, 1u64..1000, 0u64..16)
}

fn build_spec(shape: Shape, budget: Budget) -> EvalSpec {
    let (design, scheme, storm, pct, k_tb, k_ed) = shape;
    let (trials, cycles, seed) = budget;
    EvalSpec {
        design: DesignId::EVALUABLE[design],
        scheme: SchemeId::ALL[scheme],
        storm: match storm {
            0 => None,
            i => Some(StormScenario::ALL[i - 1]),
        },
        checking_pct: PCTS[pct],
        k_tb,
        k_ed,
        trials,
        cycles,
        seed,
    }
}

/// Renders a spec as a request line with one of several field orders.
fn request_line(spec: &EvalSpec, order: usize) -> String {
    let fields = [
        format!("\"design\":\"{}\"", spec.design.name()),
        format!("\"scheme\":\"{}\"", spec.scheme.name()),
        format!("\"storm\":\"{}\"", spec.storm_name()),
        format!("\"checking_pct\":{}", spec.checking_pct),
        format!("\"k_tb\":{}", spec.k_tb),
        format!("\"k_ed\":{}", spec.k_ed),
        format!("\"trials\":{}", spec.trials),
        format!("\"cycles\":{}", spec.cycles),
        format!("\"seed\":{}", spec.seed),
    ];
    // A seeded rotation plus a parity flip: enough distinct orderings
    // to exercise order independence without a permutation library.
    let n = fields.len();
    let picked: Vec<String> = (0..n)
        .map(|i| {
            let idx = if order.is_multiple_of(2) {
                (i + order) % n
            } else {
                (n - 1 - i + order) % n
            };
            fields[idx].clone()
        })
        .collect();
    format!("{{{}}}", picked.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Injectivity: two specs canonicalize (and key) equal iff they are
    /// field-for-field equal — the property that makes answering from
    /// the content-addressed cache sound.
    #[test]
    fn canonicalization_is_injective(
        shape_a in shape_strategy(),
        budget_a in budget_strategy(),
        shape_b in shape_strategy(),
        budget_b in budget_strategy(),
    ) {
        let a = build_spec(shape_a, budget_a);
        let b = build_spec(shape_b, budget_b);
        prop_assert_eq!(a == b, a.canonical() == b.canonical());
        prop_assert_eq!(a.canonical() == b.canonical(), a.key() == b.key());
        // The design tier must collapse exactly the design-relevant
        // fields.
        let design_equal = a.design == b.design
            && a.checking_pct.to_bits() == b.checking_pct.to_bits()
            && a.k_tb == b.k_tb
            && a.k_ed == b.k_ed;
        prop_assert_eq!(design_equal, a.design_key() == b.design_key());
    }

    /// Stability: any field ordering of the same request parses to the
    /// same spec, canonical form and key.
    #[test]
    fn canonicalization_survives_field_reordering(
        shape in shape_strategy(),
        budget in budget_strategy(),
        order_a in 0usize..18,
        order_b in 0usize..18,
    ) {
        let spec = build_spec(shape, budget);
        let parse = |order: usize| match parse_request(&request_line(&spec, order), 0) {
            Ok(Request::Eval { spec, .. }) => spec,
            other => panic!("expected eval, got {other:?}"),
        };
        let a = parse(order_a);
        let b = parse(order_b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.canonical(), spec.canonical());
        prop_assert_eq!(a.key(), spec.key());
    }

    /// Bit-rot never serves: replacing any single byte of a sealed
    /// payload — checksum prefix or body alike — makes the verifying
    /// open reject it.
    #[test]
    fn any_single_byte_corruption_of_a_seal_is_detected(
        chars in proptest::collection::vec(0x20u8..0x7f, 0..64),
        pos_seed in any::<u64>(),
        replacement in 0x20u8..0x7f,
    ) {
        let body = String::from_utf8(chars).expect("printable ascii");
        let sealed = seal(&body);
        let at = (pos_seed % sealed.len() as u64) as usize;
        let mut bytes = sealed.clone().into_bytes();
        // A replacement equal to the original would be a no-op flip;
        // nudge it to the next printable byte instead.
        bytes[at] = if bytes[at] == replacement {
            if replacement == 0x7e { 0x20 } else { replacement + 1 }
        } else {
            replacement
        };
        let corrupted = String::from_utf8(bytes).expect("ascii in, ascii out");
        prop_assert!(open(&corrupted, true).is_err());
        prop_assert_eq!(open(&sealed, true).unwrap(), body);
    }

    /// Defaults round-trip: a fully-explicit line and the minimal line
    /// with every default omitted share one cache key.
    #[test]
    fn explicit_defaults_collapse_onto_the_minimal_line(design in 0usize..7) {
        let spec = EvalSpec::defaults(DesignId::EVALUABLE[design]);
        let minimal = format!("{{\"design\":\"{}\"}}", spec.design.name());
        let explicit = request_line(&spec, 0);
        let key_of = |line: &str| match parse_request(line, 0) {
            Ok(Request::Eval { spec, .. }) => spec.key(),
            other => panic!("expected eval, got {other:?}"),
        };
        prop_assert_eq!(key_of(&minimal), key_of(&explicit));
    }
}

/// The warm-path contract, scheme by scheme: for every scheme in the
/// registry, the cache-hit response is byte-identical to the cold-miss
/// response that populated it.
#[test]
fn cache_hit_bytes_equal_cold_miss_bytes_for_all_schemes() {
    let mut engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    })
    .unwrap();
    for (i, scheme) in SchemeId::ALL.iter().enumerate() {
        let line = |id: usize| {
            format!(
                "{{\"id\":{id},\"design\":\"rca16\",\"scheme\":\"{}\",\"trials\":1,\
                 \"cycles\":200}}",
                scheme.name()
            )
        };
        let cold = engine.process_batch(&[line(2 * i)]).unwrap();
        let warm = engine.process_batch(&[line(2 * i + 1)]).unwrap();
        assert_eq!(
            cold.responses[0].body,
            warm.responses[0].body,
            "scheme {} must serve identical bytes warm and cold",
            scheme.name()
        );
        assert!(cold.responses[0].body.contains("\"status\":\"ok\""));
    }
    use timber_telemetry::ServiceCounter;
    assert_eq!(engine.stats().counter(ServiceCounter::Hits), 8);
    assert_eq!(engine.stats().counter(ServiceCounter::Misses), 8);
    // All 16 requests hit one compiled design.
    assert_eq!(engine.stats().counter(ServiceCounter::DesignMisses), 1);
}

/// The read-path contract at every payload offset: a cached entry
/// corrupted at *any* body byte is detected, quarantined and
/// recomputed — the served bytes never change.
#[test]
fn corrupted_cache_bytes_are_never_served_at_any_offset() {
    use timber_telemetry::ServiceCounter;
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let line =
        |id: usize| format!("{{\"id\":{id},\"design\":\"rca16\",\"trials\":1,\"cycles\":50}}");
    let cold = engine.process_batch(&[line(0)]).unwrap().responses[0]
        .body
        .clone();
    for offset in 0..cold.len() as u64 {
        // `corrupt_cached_result` flips the payload byte at
        // `offset % body_len`; sweeping 0..body_len covers them all.
        assert!(engine.corrupt_cached_result(0, offset).is_some());
        let served = engine.process_batch(&[line(1)]).unwrap().responses[0]
            .body
            .clone();
        assert_eq!(served, cold, "offset {offset} served corrupted bytes");
    }
    assert_eq!(
        engine.stats().counter(ServiceCounter::CacheCorrupt),
        cold.len() as u64,
        "every corruption must be detected exactly once"
    );
}
