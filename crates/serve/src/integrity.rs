//! Sealed (checksummed) payloads for the cache and journal.
//!
//! TIMBER's thesis is online *detection* before recovery: a Razor-style
//! shadow comparison catches the corrupted value before it commits.
//! The serving layer applies the same discipline to its own storage.
//! Every response body that enters the result cache or the durability
//! journal is **sealed**: prefixed with a checksum over its exact
//! bytes, in the format
//!
//! ```text
//! crc=<16 lowercase hex digits>;<body>
//! ```
//!
//! The checksum is the XOR fold of the four [`content_hash`] lanes —
//! the repository's standard splitmix64 sponge — over the body bytes,
//! so the sealed form is a pure deterministic function of the body and
//! verification costs one digest. On every read the seal is checked
//! before the body is served or replayed; a mismatch means bit-rot (in
//! RAM for the cache, on disk for the journal) and the entry is
//! dropped and recomputed as a miss — **a corrupted payload is never
//! served**. Like [`crate::key`], this is content integrity, not
//! cryptography: it detects accidental corruption, not forgery.

use crate::key::content_hash;

/// Byte length of the `crc=<16hex>;` seal prefix.
pub const SEAL_PREFIX_LEN: usize = 21;

/// The 64-bit payload checksum: XOR fold of the four content-hash
/// lanes over `bytes`.
pub fn payload_crc(bytes: &[u8]) -> u64 {
    let lanes = content_hash(bytes).0;
    lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3]
}

/// Seals `body` as `crc=<16hex>;<body>`.
pub fn seal(body: &str) -> String {
    format!("crc={:016x};{body}", payload_crc(body.as_bytes()))
}

/// Opens a sealed payload, returning the body if the seal verifies.
///
/// With `verify = false` the checksum comparison is skipped (the
/// `--sabotage` path: the chaos harness disables this verification to
/// prove the campaign detects a served corruption). The prefix shape
/// is still required — a string that was never sealed is an error, not
/// a silent pass-through.
pub fn open(sealed: &str, verify: bool) -> Result<&str, SealError> {
    let rest = sealed.strip_prefix("crc=").ok_or(SealError::Unsealed)?;
    if rest.len() < 17 || rest.as_bytes()[16] != b';' {
        return Err(SealError::Unsealed);
    }
    let (crc_hex, body) = (&rest[..16], &rest[17..]);
    let stored = u64::from_str_radix(crc_hex, 16).map_err(|_| SealError::Unsealed)?;
    if verify && stored != payload_crc(body.as_bytes()) {
        return Err(SealError::Corrupt);
    }
    Ok(body)
}

/// Why a sealed payload failed to open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The `crc=<16hex>;` prefix is missing or malformed — the string
    /// was never sealed (or the seal itself was destroyed).
    Unsealed,
    /// The prefix parsed but the checksum does not match the body:
    /// bit-rot inside the payload.
    Corrupt,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Unsealed => f.write_str("payload is not sealed"),
            SealError::Corrupt => f.write_str("payload checksum mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_round_trips() {
        let body = r#"{"status":"ok","mean_error":0.25}"#;
        let sealed = seal(body);
        assert!(sealed.starts_with("crc="));
        assert_eq!(sealed.len(), SEAL_PREFIX_LEN + body.len());
        assert_eq!(open(&sealed, true), Ok(body));
    }

    #[test]
    fn seal_is_deterministic() {
        assert_eq!(seal("abc"), seal("abc"));
        assert_ne!(seal("abc"), seal("abd"));
    }

    #[test]
    fn any_flipped_body_byte_is_detected() {
        let sealed = seal(r#"{"status":"ok","p50":1.0}"#);
        for i in SEAL_PREFIX_LEN..sealed.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] = if bytes[i] == b'#' { b'@' } else { b'#' };
            let mutated = String::from_utf8(bytes).unwrap();
            assert_eq!(open(&mutated, true), Err(SealError::Corrupt), "byte {i}");
        }
    }

    #[test]
    fn flipped_crc_digit_is_detected() {
        let sealed = seal("payload");
        let mut bytes = sealed.clone().into_bytes();
        bytes[4] = if bytes[4] == b'0' { b'1' } else { b'0' };
        let mutated = String::from_utf8(bytes).unwrap();
        assert_eq!(open(&mutated, true), Err(SealError::Corrupt));
    }

    #[test]
    fn unsealed_strings_are_rejected_even_unverified() {
        assert_eq!(open("no prefix", false), Err(SealError::Unsealed));
        assert_eq!(open("crc=short;x", false), Err(SealError::Unsealed));
        assert_eq!(
            open("crc=zzzzzzzzzzzzzzzz;x", false),
            Err(SealError::Unsealed)
        );
    }

    #[test]
    fn verify_false_skips_the_checksum() {
        let mut bytes = seal("body").into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = b'!';
        let mutated = String::from_utf8(bytes).unwrap();
        assert_eq!(open(&mutated, false), Ok("bod!"));
        assert_eq!(open(&mutated, true), Err(SealError::Corrupt));
    }

    #[test]
    fn empty_body_seals_and_opens() {
        let sealed = seal("");
        assert_eq!(sealed.len(), SEAL_PREFIX_LEN);
        assert_eq!(open(&sealed, true), Ok(""));
    }
}
