//! JSONL request specs and their canonical form.
//!
//! One request is one single-line JSON object. Evaluation requests
//! name a design, a scheme, a schedule and a trial budget:
//!
//! ```json
//! {"op":"eval","id":3,"design":"rca16","scheme":"timber-ff",
//!  "checking_pct":24.0,"k_tb":1,"k_ed":2,"trials":2,"cycles":400,
//!  "seed":7,"storm":"droop-train"}
//! ```
//!
//! Every field except `design` has a default; unknown or duplicated
//! fields are deterministic errors (strictness is what lets the
//! canonical form be injective). `{"op":"stats"}` returns the service
//! counters, `{"op":"shutdown"}` ends a daemon session.
//!
//! # Canonicalization
//!
//! [`EvalSpec::canonical`] renders the spec as a fixed-order,
//! fully-defaulted string: JSON field order, whitespace, and numeric
//! spellings (`24` vs `24.0`) all collapse to one representative, and
//! the float is rendered by its IEEE-754 bit pattern so no two
//! distinct values share a spelling. The content hash of that string
//! is the cache key; the request `id` is deliberately excluded so
//! identical work from different requests shares one cache entry.

use serde_json::Value;
use timber_resilience::StormScenario;
use timber_schemes::SchemeId;

use crate::key::{content_hash, CacheKey};

/// Every netlist the service can evaluate: the lint gate's shipped
/// generator set, plus the `poison` diagnostic design whose compile
/// step panics by contract (it exercises the quarantine path end to
/// end, like `repro soak --inject-panic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignId {
    /// 16-bit ripple-carry adder.
    Rca16,
    /// 16-bit Kogge–Stone adder.
    Ks16,
    /// 8-bit array multiplier.
    Mul8,
    /// 8-bit ALU.
    Alu8,
    /// Seeded random DAG.
    RandomDag,
    /// Four-stage pipelined datapath.
    Datapath,
    /// Structural processor proxy (per-bank STA stage profiles).
    Proc,
    /// Diagnostic: compilation panics, exercising quarantine.
    Poison,
}

impl DesignId {
    /// Every design, in canonical order.
    pub const ALL: [DesignId; 8] = [
        DesignId::Rca16,
        DesignId::Ks16,
        DesignId::Mul8,
        DesignId::Alu8,
        DesignId::RandomDag,
        DesignId::Datapath,
        DesignId::Proc,
        DesignId::Poison,
    ];

    /// The evaluable designs (everything except `poison`).
    pub const EVALUABLE: [DesignId; 7] = [
        DesignId::Rca16,
        DesignId::Ks16,
        DesignId::Mul8,
        DesignId::Alu8,
        DesignId::RandomDag,
        DesignId::Datapath,
        DesignId::Proc,
    ];

    /// Stable machine-readable name (request field value).
    pub fn name(self) -> &'static str {
        match self {
            DesignId::Rca16 => "rca16",
            DesignId::Ks16 => "ks16",
            DesignId::Mul8 => "mul8",
            DesignId::Alu8 => "alu8",
            DesignId::RandomDag => "random_dag",
            DesignId::Datapath => "datapath",
            DesignId::Proc => "proc",
            DesignId::Poison => "poison",
        }
    }

    /// Resolves a request field value back to its identifier.
    pub fn from_name(name: &str) -> Option<DesignId> {
        DesignId::ALL.into_iter().find(|d| d.name() == name)
    }
}

/// Hard ceilings on a single request's work, so one request cannot
/// stall the batch executor into its watchdog.
pub const MAX_TRIALS: usize = 64;
/// Upper bound on simulated cycles per trial.
pub const MAX_CYCLES: u64 = 1_000_000;

/// A fully-defaulted evaluation request (minus the `id`, which rides
/// beside it in [`Request::Eval`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSpec {
    /// Which netlist to compile and evaluate.
    pub design: DesignId,
    /// Which sequential scheme from the registry to run.
    pub scheme: SchemeId,
    /// Stress environment: `None` is the nominal droop+jitter stress,
    /// `Some` is one of the soak storm scenarios.
    pub storm: Option<StormScenario>,
    /// Checking period as a percentage of the clock period.
    pub checking_pct: f64,
    /// Time-borrowing intervals.
    pub k_tb: u8,
    /// Error-detection intervals.
    pub k_ed: u8,
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Simulated cycles per trial.
    pub cycles: u64,
    /// Base seed; trial seeds derive via splitmix64.
    pub seed: u64,
}

impl EvalSpec {
    /// The defaults every omitted field assumes.
    pub fn defaults(design: DesignId) -> EvalSpec {
        EvalSpec {
            design,
            scheme: SchemeId::TimberFf,
            storm: None,
            checking_pct: 24.0,
            k_tb: 1,
            k_ed: 2,
            trials: 2,
            cycles: 400,
            seed: 7,
        }
    }

    /// Stable name of the storm axis (`"none"` for nominal stress).
    pub fn storm_name(&self) -> &'static str {
        self.storm.map_or("none", |s| s.name())
    }

    /// The canonical spec string the cache key digests: fixed field
    /// order, every field explicit, the float by bit pattern. Two
    /// specs canonicalize equal iff they are field-for-field equal.
    pub fn canonical(&self) -> String {
        format!(
            "timber-serve/v1;design={};scheme={};storm={};pct_bits={:016x};k_tb={};k_ed={};trials={};cycles={};seed={}",
            self.design.name(),
            self.scheme.name(),
            self.storm_name(),
            self.checking_pct.to_bits(),
            self.k_tb,
            self.k_ed,
            self.trials,
            self.cycles,
            self.seed,
        )
    }

    /// Canonical form of the *design tier*: the subset of fields the
    /// compiled artifact (netlist + STA + snapped period + padding
    /// plan) depends on. Requests differing only in scheme, storm,
    /// trial budget or seed share one compiled design.
    pub fn design_canonical(&self) -> String {
        format!(
            "timber-serve-design/v1;design={};pct_bits={:016x};k_tb={};k_ed={}",
            self.design.name(),
            self.checking_pct.to_bits(),
            self.k_tb,
            self.k_ed,
        )
    }

    /// Content-addressed result-cache key.
    pub fn key(&self) -> CacheKey {
        content_hash(self.canonical().as_bytes())
    }

    /// Content-addressed design-cache key.
    pub fn design_key(&self) -> CacheKey {
        content_hash(self.design_canonical().as_bytes())
    }
}

/// Client-declared importance of an eval request. Only consulted when
/// the service governor has escalated to shed-low: low-priority cache
/// misses are shed first. Like `id`, it is a *service* attribute, not
/// part of the spec — two requests differing only in priority share
/// one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served at every level that admits misses (the default).
    #[default]
    High,
    /// First to be shed under load.
    Low,
}

impl Priority {
    /// Stable machine-readable name (request field value).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a spec (answered from cache when possible).
    Eval {
        /// Response-ordering id.
        id: u64,
        /// The fully-defaulted spec.
        spec: EvalSpec,
        /// Shedding priority (service attribute, not part of the spec).
        priority: Priority,
        /// Latency budget in milliseconds: a cache miss whose estimated
        /// evaluation cost exceeds it is rejected up front rather than
        /// admitted and finished late. `None` means no deadline.
        deadline_ms: Option<u64>,
    },
    /// Return the service telemetry counters.
    Stats {
        /// Response-ordering id.
        id: u64,
    },
    /// End the daemon session cleanly.
    Shutdown {
        /// Response-ordering id.
        id: u64,
    },
}

impl Request {
    /// The request's response-ordering id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Eval { id, .. } | Request::Stats { id } | Request::Shutdown { id } => *id,
        }
    }
}

fn field_u64(value: &Value, name: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("field {name:?} must be a non-negative integer"))
}

fn field_f64(value: &Value, name: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("field {name:?} must be a number"))
}

fn field_str<'v>(value: &'v Value, name: &str) -> Result<&'v str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("field {name:?} must be a string"))
}

/// Parses one request line. `default_id` is assigned when the line
/// carries no `id` field (the engine hands out its running sequence
/// number). Errors are deterministic single-line descriptions.
pub fn parse_request(line: &str, default_id: u64) -> Result<Request, String> {
    let doc = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let fields = match doc {
        Value::Object(fields) => fields,
        _ => return Err("request must be a JSON object".to_owned()),
    };

    let mut seen: Vec<&str> = Vec::new();
    let mut op = "eval";
    let mut id: Option<u64> = None;
    let mut design: Option<DesignId> = None;
    let mut spec_touched = false;
    let mut priority = Priority::High;
    let mut deadline_ms: Option<u64> = None;
    let mut service_touched = false;
    // Staged overrides, applied once the design (and thus the default
    // spec) is known.
    let mut scheme: Option<SchemeId> = None;
    let mut storm: Option<Option<StormScenario>> = None;
    let mut checking_pct: Option<f64> = None;
    let mut k_tb: Option<u8> = None;
    let mut k_ed: Option<u8> = None;
    let mut trials: Option<usize> = None;
    let mut cycles: Option<u64> = None;
    let mut seed: Option<u64> = None;

    for (name, value) in &fields {
        if seen.contains(&name.as_str()) {
            return Err(format!("duplicate field {name:?}"));
        }
        match name.as_str() {
            "op" => {
                op = match field_str(value, "op")? {
                    "eval" => "eval",
                    "stats" => "stats",
                    "shutdown" => "shutdown",
                    other => {
                        return Err(format!(
                            "unknown op {other:?} (expected eval, stats or shutdown)"
                        ))
                    }
                };
            }
            "id" => id = Some(field_u64(value, "id")?),
            "design" => {
                let text = field_str(value, "design")?;
                design = Some(DesignId::from_name(text).ok_or_else(|| {
                    format!(
                        "unknown design {text:?} (expected one of: {})",
                        DesignId::ALL.map(|d| d.name()).join(", ")
                    )
                })?);
            }
            "scheme" => {
                let text = field_str(value, "scheme")?;
                scheme = Some(SchemeId::from_name(text).ok_or_else(|| {
                    format!(
                        "unknown scheme {text:?} (expected one of: {})",
                        SchemeId::ALL.map(|s| s.name()).join(", ")
                    )
                })?);
                spec_touched = true;
            }
            "storm" => {
                let text = field_str(value, "storm")?;
                storm = Some(if text == "none" {
                    None
                } else {
                    Some(StormScenario::parse(text).ok_or_else(|| {
                        format!(
                            "unknown storm {text:?} (expected none, {})",
                            StormScenario::ALL.map(|s| s.name()).join(", ")
                        )
                    })?)
                });
                spec_touched = true;
            }
            "checking_pct" => {
                let pct = field_f64(value, "checking_pct")?;
                if !pct.is_finite() || pct <= 0.0 || pct > 50.0 {
                    return Err(format!("checking_pct {pct} out of range (0, 50]"));
                }
                checking_pct = Some(pct);
                spec_touched = true;
            }
            "k_tb" => {
                let k = field_u64(value, "k_tb")?;
                if k > 8 {
                    return Err(format!("k_tb {k} out of range 0..=8"));
                }
                k_tb = Some(k as u8);
                spec_touched = true;
            }
            "k_ed" => {
                let k = field_u64(value, "k_ed")?;
                if !(1..=8).contains(&k) {
                    return Err(format!("k_ed {k} out of range 1..=8"));
                }
                k_ed = Some(k as u8);
                spec_touched = true;
            }
            "trials" => {
                let t = field_u64(value, "trials")? as usize;
                if !(1..=MAX_TRIALS).contains(&t) {
                    return Err(format!("trials {t} out of range 1..={MAX_TRIALS}"));
                }
                trials = Some(t);
                spec_touched = true;
            }
            "cycles" => {
                let c = field_u64(value, "cycles")?;
                if !(1..=MAX_CYCLES).contains(&c) {
                    return Err(format!("cycles {c} out of range 1..={MAX_CYCLES}"));
                }
                cycles = Some(c);
                spec_touched = true;
            }
            "seed" => {
                seed = Some(field_u64(value, "seed")?);
                spec_touched = true;
            }
            "priority" => {
                priority = match field_str(value, "priority")? {
                    "high" => Priority::High,
                    "low" => Priority::Low,
                    other => {
                        return Err(format!("unknown priority {other:?} (expected high or low)"))
                    }
                };
                service_touched = true;
            }
            "deadline_ms" => {
                let d = field_u64(value, "deadline_ms")?;
                if d == 0 {
                    return Err("deadline_ms must be at least 1".to_owned());
                }
                deadline_ms = Some(d);
                service_touched = true;
            }
            other => return Err(format!("unknown field {other:?}")),
        }
        seen.push(name.as_str());
    }

    let id = id.unwrap_or(default_id);
    match op {
        "stats" | "shutdown" => {
            if design.is_some() || spec_touched || service_touched {
                return Err(format!("op {op:?} takes no spec fields"));
            }
            Ok(if op == "stats" {
                Request::Stats { id }
            } else {
                Request::Shutdown { id }
            })
        }
        _ => {
            let design = design.ok_or("eval request needs a \"design\" field")?;
            let mut spec = EvalSpec::defaults(design);
            if let Some(v) = scheme {
                spec.scheme = v;
            }
            if let Some(v) = storm {
                spec.storm = v;
            }
            if let Some(v) = checking_pct {
                spec.checking_pct = v;
            }
            if let Some(v) = k_tb {
                spec.k_tb = v;
            }
            if let Some(v) = k_ed {
                spec.k_ed = v;
            }
            if let Some(v) = trials {
                spec.trials = v;
            }
            if let Some(v) = cycles {
                spec.cycles = v;
            }
            if let Some(v) = seed {
                spec.seed = v;
            }
            Ok(Request::Eval {
                id,
                spec,
                priority,
                deadline_ms,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_names_round_trip() {
        for d in DesignId::ALL {
            assert_eq!(DesignId::from_name(d.name()), Some(d));
        }
        assert_eq!(DesignId::from_name("frobnicator"), None);
    }

    #[test]
    fn minimal_request_takes_all_defaults() {
        let r = parse_request(r#"{"design":"rca16"}"#, 9).unwrap();
        match r {
            Request::Eval {
                id,
                spec,
                priority,
                deadline_ms,
            } => {
                assert_eq!(id, 9);
                assert_eq!(spec, EvalSpec::defaults(DesignId::Rca16));
                assert_eq!(priority, Priority::High);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn priority_and_deadline_parse_but_stay_out_of_the_key() {
        let a = parse_request(r#"{"design":"mul8"}"#, 0).unwrap();
        let b = parse_request(r#"{"design":"mul8","priority":"low","deadline_ms":5}"#, 0).unwrap();
        let (
            Request::Eval { spec: sa, .. },
            Request::Eval {
                spec: sb,
                priority,
                deadline_ms,
                ..
            },
        ) = (a, b)
        else {
            panic!("both must be evals");
        };
        assert_eq!(priority, Priority::Low);
        assert_eq!(deadline_ms, Some(5));
        // Service attributes are excluded from canonicalization, like id.
        assert_eq!(sa.canonical(), sb.canonical());
        assert_eq!(sa.key(), sb.key());
    }

    #[test]
    fn bad_service_attributes_are_deterministic_errors() {
        for (line, needle) in [
            (
                r#"{"design":"rca16","priority":"urgent"}"#,
                "unknown priority",
            ),
            (r#"{"design":"rca16","deadline_ms":0}"#, "at least 1"),
            (r#"{"op":"stats","priority":"low"}"#, "takes no spec fields"),
            (
                r#"{"op":"shutdown","deadline_ms":9}"#,
                "takes no spec fields",
            ),
        ] {
            let err = parse_request(line, 0).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
            assert_eq!(err, parse_request(line, 0).unwrap_err());
        }
    }

    #[test]
    fn field_reordering_yields_the_same_canonical_form() {
        let a = parse_request(
            r#"{"design":"ks16","seed":11,"cycles":500,"scheme":"razor-ff"}"#,
            0,
        )
        .unwrap();
        let b = parse_request(
            r#"{"scheme":"razor-ff","cycles":500,"design":"ks16","seed":11}"#,
            0,
        )
        .unwrap();
        let (Request::Eval { spec: sa, .. }, Request::Eval { spec: sb, .. }) = (a, b) else {
            panic!("both must be evals");
        };
        assert_eq!(sa.canonical(), sb.canonical());
        assert_eq!(sa.key(), sb.key());
    }

    #[test]
    fn number_spelling_collapses_but_value_changes_do_not() {
        let parse = |line: &str| match parse_request(line, 0).unwrap() {
            Request::Eval { spec, .. } => spec,
            other => panic!("{other:?}"),
        };
        let a = parse(r#"{"design":"rca16","checking_pct":24}"#);
        let b = parse(r#"{"design":"rca16","checking_pct":24.0}"#);
        let c = parse(r#"{"design":"rca16","checking_pct":24.5}"#);
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn id_is_not_part_of_the_cache_key() {
        let a = parse_request(r#"{"design":"mul8","id":1}"#, 0).unwrap();
        let b = parse_request(r#"{"design":"mul8","id":2}"#, 0).unwrap();
        let (Request::Eval { spec: sa, .. }, Request::Eval { spec: sb, .. }) = (a, b) else {
            panic!("both must be evals");
        };
        assert_eq!(sa.key(), sb.key());
    }

    #[test]
    fn unknown_duplicate_and_type_errors_are_deterministic() {
        for (line, needle) in [
            (r#"{"design":"rca16","frob":1}"#, "unknown field"),
            (r#"{"design":"nope"}"#, "unknown design"),
            (r#"{"design":"rca16","scheme":"nope"}"#, "unknown scheme"),
            (r#"{"design":"rca16","storm":"nope"}"#, "unknown storm"),
            (r#"{"design":"rca16","trials":0}"#, "out of range"),
            (r#"{"design":"rca16","cycles":0}"#, "out of range"),
            (r#"{"design":"rca16","checking_pct":99}"#, "out of range"),
            (r#"{"design":"rca16","seed":"x"}"#, "non-negative integer"),
            (r#"{"op":"stats","design":"rca16"}"#, "takes no spec fields"),
            (r#"{}"#, "needs a \"design\""),
            (r#"[1,2]"#, "JSON object"),
            (r#"{"design""#, "malformed JSON"),
        ] {
            let err = parse_request(line, 0).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
            // Determinism: the same line always produces the same error.
            assert_eq!(err, parse_request(line, 0).unwrap_err());
        }
        let dup = parse_request(r#"{"design":"rca16","design":"ks16"}"#, 0);
        // The vendored parser may reject duplicate keys itself; either
        // way the line must fail deterministically.
        assert!(!matches!(dup, Ok(Request::Eval { .. })));
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#, 5).unwrap(),
            Request::Stats { id: 5 }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":77}"#, 5).unwrap(),
            Request::Shutdown { id: 77 }
        );
    }

    #[test]
    fn design_tier_key_ignores_scheme_and_budget() {
        let mut a = EvalSpec::defaults(DesignId::Datapath);
        let mut b = a;
        b.scheme = SchemeId::RazorFf;
        b.trials = 4;
        b.seed = 99;
        assert_eq!(a.design_key(), b.design_key());
        assert_ne!(a.key(), b.key());
        a.k_tb = 2;
        assert_ne!(a.design_key(), b.design_key());
    }
}
