//! `repro storm`: the deterministic load generator and replay gate.
//!
//! The campaign synthesizes `requests` evaluation requests drawn (by a
//! seeded splitmix64 pick) from a pool of `requests / 8` distinct
//! specs, so most requests repeat earlier content and the service can
//! prove its cache. Requests are dealt to `clients` in contiguous
//! blocks and re-interleaved round-robin — deliberately *not* id order
//! — then fed through the engine in batches; poisoned requests (the
//! `poison` design, each with a unique seed) ride at the end of the
//! stream and must all land in quarantine.
//!
//! The determinism contract under test: after sorting by request id,
//! the response documents and the counter block are byte-identical for
//! any `--clients`, `--threads` and batch interleaving — and across a
//! cold replay of the same campaign in a fresh process. Wall-clock
//! latency (the 10× hit-speedup floor) is judged for the exit code but
//! kept out of the deterministic report body.
//!
//! With a `chaos_seed` the storm doubles as the *chaos client*: a
//! seeded splitmix64 draw demotes some requests to low priority and
//! pins others to an unaffordable 1 ms deadline, the engine runs under
//! the tight admission-control governor, and every shed or
//! deadline-rejected response is retried — after idle batches that let
//! the ladder step back down and a seeded jittered backoff — until the
//! whole stream is served. The retried bodies replace the originals,
//! so the determinism gate is unchanged: the final report must be
//! byte-identical for any `--threads`, and every real request must end
//! `ok`.

use std::collections::BTreeMap;
use std::io;

use timber_pipeline::montecarlo::splitmix64;
use timber_resilience::RetryPolicy;
use timber_schemes::SchemeId;
use timber_telemetry::{ServiceCounter, ServiceStats};

use crate::engine::{Engine, EngineConfig, Response};
use crate::governor::ServiceGovernorConfig;
use crate::spec::DesignId;

/// Minimum cache hit rate the gate demands from the pinned campaign.
pub const MIN_HIT_RATE: f64 = 0.5;
/// Minimum mean cold/hit service-time ratio the gate demands.
pub const MIN_HIT_SPEEDUP: f64 = 10.0;
/// Retry rounds the chaos client attempts before giving up (a stream
/// still degraded after this many rounds fails the gate).
pub const MAX_RETRY_ROUNDS: u32 = 8;
/// Idle batches between chaos-client retry rounds: enough calm
/// observations for the tight governor (`hold_batches = 2`) to step
/// the ladder back down before the re-send.
const IDLE_BATCHES_PER_ROUND: usize = 4;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct StormSpec {
    /// Simulated concurrent clients the stream is dealt across.
    pub clients: usize,
    /// Evaluation requests to issue (excluding poison).
    pub requests: usize,
    /// Base seed for pool construction and request picks.
    pub seed: u64,
    /// Poisoned requests appended after the stream.
    pub poison: usize,
    /// Worker threads for cache-miss batches (0 = all cores).
    pub threads: usize,
    /// Engine batch size (queue depth per processing round).
    pub batch_size: usize,
    /// Result-cache capacity.
    pub capacity: usize,
    /// Chaos-client mode: the seed for the priority/deadline draw and
    /// the retry jitter. `None` is the plain load campaign.
    pub chaos_seed: Option<u64>,
    /// Chaos-client retry backoff base, milliseconds.
    pub retry_base_ms: u64,
    /// Chaos-client retry backoff cap, milliseconds.
    pub retry_cap_ms: u64,
}

impl StormSpec {
    /// The pinned CI campaign at `seed`.
    pub fn pinned(seed: u64) -> StormSpec {
        StormSpec {
            clients: 4,
            requests: 64,
            seed,
            poison: 0,
            threads: 0,
            batch_size: 16,
            capacity: crate::engine::DEFAULT_RESULT_CAPACITY,
            chaos_seed: None,
            retry_base_ms: 10,
            retry_cap_ms: 100,
        }
    }

    /// Distinct specs in the request pool.
    pub fn pool_size(&self) -> usize {
        (self.requests / 8).max(1)
    }

    /// The request line for pool entry `j`: design and scheme walk
    /// coprime cycles (7 and 8), so the first 56 entries are distinct
    /// by construction and the spec seed advances beyond that.
    fn pool_line(&self, j: usize, id: u64) -> String {
        let design = DesignId::EVALUABLE[j % DesignId::EVALUABLE.len()];
        let scheme = SchemeId::ALL[j % SchemeId::ALL.len()];
        let seed = self.seed.wrapping_add((j / 56) as u64);
        format!(
            "{{\"id\":{id},\"design\":\"{}\",\"scheme\":\"{}\",\"trials\":1,\"cycles\":300,\
             \"seed\":{seed}}}",
            design.name(),
            scheme.name(),
        )
    }

    /// The *undecorated* request line for id `i`: a seeded pick from
    /// the pool. This is also what the chaos client re-sends on retry —
    /// priority back to the default and the hopeless deadline dropped.
    fn request_line(&self, i: usize) -> String {
        let pick = splitmix64(self.seed ^ 0x00C0_FFEE, i as u64) as usize;
        self.pool_line(pick % self.pool_size(), i as u64)
    }

    /// The request line for id `i` as first sent: in chaos mode a
    /// seeded draw pins ~1/8 of requests to an unaffordable 1 ms
    /// deadline and demotes a disjoint ~1/4 to low priority, so the
    /// tight governor and the deadline screen both get real traffic.
    fn decorated_line(&self, i: usize) -> String {
        let mut line = self.request_line(i);
        let Some(chaos_seed) = self.chaos_seed else {
            return line;
        };
        let draw = splitmix64(chaos_seed, i as u64);
        let extra = if draw.is_multiple_of(8) {
            ",\"deadline_ms\":1"
        } else if draw % 4 == 1 {
            ",\"priority\":\"low\""
        } else {
            return line;
        };
        line.pop(); // the closing brace
        line.push_str(extra);
        line.push('}');
        line
    }

    /// Which simulated client request `id` was dealt to (poison rides
    /// on the last client).
    pub fn client_of(&self, id: u64) -> usize {
        let clients = self.clients.max(1);
        let block = self.requests.div_ceil(clients).max(1);
        (id as usize / block).min(clients - 1)
    }

    /// The full request stream in *arrival* order: block-dealt to
    /// clients, merged round-robin, poison appended last.
    pub fn stream(&self) -> Vec<String> {
        let clients = self.clients.max(1);
        // Id order first.
        let by_id: Vec<String> = (0..self.requests).map(|i| self.decorated_line(i)).collect();
        // Contiguous blocks per client, then round-robin across them:
        // the arrival order a fair scheduler would produce, and
        // measurably different from id order once clients > 1.
        let block = self.requests.div_ceil(clients);
        let mut merged = Vec::with_capacity(self.requests + self.poison);
        for round in 0..block {
            for client in 0..clients {
                if let Some(line) = by_id.get(client * block + round) {
                    merged.push(line.clone());
                }
            }
        }
        for p in 0..self.poison {
            // Unique seeds: every poisoned request is distinct content
            // and must be quarantined on its own.
            merged.push(format!(
                "{{\"id\":{},\"design\":\"poison\",\"seed\":{}}}",
                self.requests + p,
                self.seed.wrapping_add(p as u64),
            ));
        }
        merged
    }
}

/// Per-client chaos accounting: what the simulated client saw and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClientChaos {
    /// Re-sent requests (each shed or deadline-rejected response costs
    /// one retry in a later round).
    pub retries: u64,
    /// Shed responses observed, across all rounds.
    pub sheds: u64,
    /// Deadline-rejected responses observed, across all rounds.
    pub deadline_misses: u64,
}

/// Campaign outcome.
#[derive(Debug)]
pub struct StormReport {
    /// The campaign parameters.
    pub spec: StormSpec,
    /// All responses, sorted by request id (retried requests keep
    /// their final body).
    pub responses: Vec<Response>,
    /// Final engine telemetry.
    pub stats: ServiceStats,
    /// Per-client retry/shed/deadline accounting (all zero outside
    /// chaos mode).
    pub client_stats: Vec<ClientChaos>,
}

impl StormReport {
    /// Deterministic hit rate, from the counter block.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Wall-clock mean cold/hit service-time ratio.
    pub fn hit_speedup(&self) -> f64 {
        self.stats.hit_speedup()
    }

    /// The deterministic gate: every real request answered `ok`,
    /// exactly the poisoned requests quarantined, and the pinned
    /// campaign's hit rate at least [`MIN_HIT_RATE`].
    pub fn deterministic_pass(&self) -> bool {
        let real_ok = self
            .responses
            .iter()
            .filter(|r| r.id < self.spec.requests as u64)
            .all(|r| r.body.starts_with("\"status\":\"ok\""));
        let poison_quarantined = self
            .responses
            .iter()
            .filter(|r| r.id >= self.spec.requests as u64)
            .all(|r| r.body.starts_with("\"status\":\"quarantined\""));
        let expected = self.spec.requests + self.spec.poison;
        real_ok
            && poison_quarantined
            && self.responses.len() == expected
            && self.stats.counter(ServiceCounter::Quarantined) == self.spec.poison as u64
            && self.hit_rate() >= MIN_HIT_RATE
    }

    /// The full gate: the deterministic checks plus the wall-clock
    /// cache-speedup floor ([`MIN_HIT_SPEEDUP`]).
    pub fn pass(&self) -> bool {
        self.deterministic_pass() && self.hit_speedup() >= MIN_HIT_SPEEDUP
    }

    /// The response documents alone, one per line, in id order — the
    /// bytes the determinism contract covers: identical for any
    /// `--threads`, `--clients` and batch interleaving of the same
    /// campaign.
    pub fn responses_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.responses {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// The canonical machine-readable report: campaign parameters,
    /// responses in id order and the deterministic counter block —
    /// byte-identical across thread counts and cold replays of the
    /// same campaign (the parameter echo and queue-depth gauge
    /// naturally track `--clients`/`--batch-size`; the response bytes
    /// themselves never do, see [`StormReport::responses_jsonl`]).
    /// Wall-clock latency is deliberately absent.
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"tool\":\"timber-storm\",\"schema_version\":2");
        out.push_str(&format!(
            ",\"clients\":{},\"requests\":{},\"seed\":{},\"poison\":{},\"pool\":{}",
            self.spec.clients,
            self.spec.requests,
            self.spec.seed,
            self.spec.poison,
            self.spec.pool_size()
        ));
        match self.spec.chaos_seed {
            Some(s) => out.push_str(&format!(",\"chaos_seed\":{s}")),
            None => out.push_str(",\"chaos_seed\":null"),
        }
        out.push_str(",\"client_stats\":[");
        for (i, c) in self.client_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"client\":{i},\"retries\":{},\"sheds\":{},\"deadline_misses\":{}}}",
                c.retries, c.sheds, c.deadline_misses
            ));
        }
        out.push(']');
        out.push_str(",\"responses\":[");
        for (i, r) in self.responses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.render());
        }
        out.push_str(&format!(
            "],\"counters\":{},\"hit_rate\":{:.4},\"pass\":{}}}",
            self.stats.counters_json(),
            self.hit_rate(),
            self.deterministic_pass()
        ));
        out
    }

    /// Human-readable summary, including the wall-clock speedup the
    /// JSON deliberately omits.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "storm: seed {} | {} requests over {} clients (pool {}) | {} poisoned\n",
            self.spec.seed,
            self.spec.requests,
            self.spec.clients,
            self.spec.pool_size(),
            self.spec.poison
        ));
        out.push_str(&format!(
            "cache: {} hits / {} misses (rate {:.2}, floor {MIN_HIT_RATE}), \
             {} evictions\n",
            self.stats.counter(ServiceCounter::Hits),
            self.stats.counter(ServiceCounter::Misses),
            self.hit_rate(),
            self.stats.counter(ServiceCounter::Evictions),
        ));
        out.push_str(&format!(
            "latency: hit mean {} ns p99 {} ns | cold mean {} ns p99 {} ns | \
             speedup {:.1}x (floor {MIN_HIT_SPEEDUP}x)\n",
            self.stats.hit_latency.mean(),
            self.stats.hit_latency.p99(),
            self.stats.miss_latency.mean(),
            self.stats.miss_latency.p99(),
            self.hit_speedup(),
        ));
        out.push_str(&format!(
            "quarantined: {} (expected {})\n",
            self.stats.counter(ServiceCounter::Quarantined),
            self.spec.poison
        ));
        if self.spec.chaos_seed.is_some() {
            let total: u64 = self.client_stats.iter().map(|c| c.retries).sum();
            let sheds: u64 = self.client_stats.iter().map(|c| c.sheds).sum();
            let deadline: u64 = self.client_stats.iter().map(|c| c.deadline_misses).sum();
            out.push_str(&format!(
                "chaos client: {total} retries | {sheds} sheds | {deadline} deadline misses\n",
            ));
        }
        out.push_str(if self.pass() { "PASS\n" } else { "FAIL\n" });
        out
    }
}

/// Degraded responses the chaos client retries (everything else is
/// final: `ok`, `quarantined` or a hard error).
fn degraded(body: &str) -> bool {
    body.starts_with("\"status\":\"shed\"") || body.starts_with("\"status\":\"deadline\"")
}

/// Bumps the owning client's shed/deadline tallies for one observed
/// response.
fn tally(spec: &StormSpec, response: &Response, stats: &mut [ClientChaos]) {
    let client = spec.client_of(response.id);
    if response.body.starts_with("\"status\":\"shed\"") {
        stats[client].sheds += 1;
    } else if response.body.starts_with("\"status\":\"deadline\"") {
        stats[client].deadline_misses += 1;
    }
}

/// Runs the campaign against a fresh engine. `Err` is an I/O failure
/// (journalling), not a gate verdict.
pub fn run(spec: &StormSpec) -> io::Result<StormReport> {
    let mut config = EngineConfig {
        result_capacity: spec.capacity,
        threads: spec.threads,
        retry: RetryPolicy::from_millis(spec.retry_base_ms, spec.retry_cap_ms, spec.seed),
        ..EngineConfig::default()
    };
    if spec.chaos_seed.is_some() {
        // Chaos mode exercises admission control; the inert default
        // governor would never shed anything.
        config.governor = ServiceGovernorConfig::tight();
    }
    let mut engine = Engine::new(config)?;
    let stream = spec.stream();
    let mut responses: Vec<Response> = Vec::with_capacity(stream.len());
    for batch in stream.chunks(spec.batch_size.max(1)) {
        responses.extend(engine.process_batch(batch)?.responses);
    }
    // Canonical ordering: by request id, whatever the interleaving.
    responses.sort_by_key(|r| r.id);
    let mut client_stats = vec![ClientChaos::default(); spec.clients.max(1)];
    if let Some(chaos_seed) = spec.chaos_seed {
        for r in &responses {
            tally(spec, r, &mut client_stats);
        }
        let policy = RetryPolicy::from_millis(spec.retry_base_ms, spec.retry_cap_ms, chaos_seed);
        let idle: Vec<String> = Vec::new();
        for round in 1..=MAX_RETRY_ROUNDS {
            let pending: Vec<usize> = responses
                .iter()
                .enumerate()
                .filter(|(_, r)| degraded(&r.body))
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            // A patient client: idle batches are calm observations, so
            // the governor's hold streak can step the ladder back down
            // before the re-send.
            for _ in 0..IDLE_BATCHES_PER_ROUND {
                engine.process_batch(&idle)?;
            }
            // Seeded jittered backoff — slept once per round at the
            // round's largest per-request wait. Wall-clock only; the
            // deterministic report never sees it.
            if let Some(wait) = pending
                .iter()
                .map(|&i| policy.backoff(round, responses[i].id))
                .max()
            {
                std::thread::sleep(wait);
            }
            let lines: Vec<String> = pending
                .iter()
                .map(|&i| {
                    let id = responses[i].id;
                    client_stats[spec.client_of(id)].retries += 1;
                    spec.request_line(id as usize)
                })
                .collect();
            let by_id: BTreeMap<u64, usize> =
                pending.iter().map(|&i| (responses[i].id, i)).collect();
            for r in engine.process_batch(&lines)?.responses {
                tally(spec, &r, &mut client_stats);
                if let Some(&i) = by_id.get(&r.id) {
                    responses[i] = r;
                }
            }
        }
    }
    Ok(StormReport {
        spec: spec.clone(),
        responses,
        stats: engine.stats().clone(),
        client_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> StormSpec {
        StormSpec {
            clients: 3,
            requests: 24,
            seed,
            poison: 0,
            threads: 4,
            batch_size: 8,
            capacity: 1024,
            chaos_seed: None,
            retry_base_ms: 1,
            retry_cap_ms: 2,
        }
    }

    #[test]
    fn pinned_campaign_passes_and_reports() {
        let report = run(&quick(7)).unwrap();
        assert!(report.deterministic_pass(), "{}", report.render());
        assert!(report.hit_rate() >= MIN_HIT_RATE);
        assert_eq!(report.responses.len(), 24);
        let doc: serde_json::Value = serde_json::from_str(&report.json()).unwrap();
        assert_eq!(doc["tool"], serde_json::json!("timber-storm"));
        assert_eq!(doc["pass"], serde_json::json!(true));
    }

    #[test]
    fn client_and_thread_interleaving_never_changes_the_responses() {
        let mut a = quick(3);
        a.clients = 1;
        a.threads = 1;
        a.batch_size = 24;
        let mut b = quick(3);
        b.clients = 5;
        b.threads = 8;
        b.batch_size = 5;
        let ra = run(&a).unwrap();
        let rb = run(&b).unwrap();
        // The response bytes and the cache trajectory are interleaving
        // independent; only the parameter echo may differ.
        assert_eq!(ra.responses_jsonl(), rb.responses_jsonl());
        assert_eq!(
            ra.stats.counter(ServiceCounter::Hits),
            rb.stats.counter(ServiceCounter::Hits)
        );
        assert_eq!(
            ra.stats.counter(ServiceCounter::Misses),
            rb.stats.counter(ServiceCounter::Misses)
        );
    }

    #[test]
    fn cold_replay_is_byte_identical() {
        let spec = quick(11);
        assert_eq!(run(&spec).unwrap().json(), run(&spec).unwrap().json());
    }

    #[test]
    fn poisoned_requests_quarantine_without_failing_the_rest() {
        let mut spec = quick(7);
        spec.poison = 2;
        let report = run(&spec).unwrap();
        assert!(report.deterministic_pass(), "{}", report.render());
        let quarantined: Vec<&Response> = report
            .responses
            .iter()
            .filter(|r| r.body.starts_with("\"status\":\"quarantined\""))
            .collect();
        assert_eq!(quarantined.len(), 2);
        assert!(quarantined.iter().all(|r| r.id >= 24));
    }

    #[test]
    fn stream_interleaving_differs_from_id_order_but_ids_cover_all() {
        let spec = quick(7);
        let stream = spec.stream();
        let ids: Vec<u64> = stream
            .iter()
            .map(|l| {
                let doc: serde_json::Value = serde_json::from_str(l).unwrap();
                doc["id"].as_u64().unwrap()
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..24).collect::<Vec<u64>>());
        assert_ne!(ids, sorted, "block dealing must reorder arrivals");
    }

    #[test]
    fn chaos_client_retries_until_every_request_is_served() {
        let mut spec = quick(7);
        spec.requests = 64;
        spec.batch_size = 16;
        spec.chaos_seed = Some(5);
        let report = run(&spec).unwrap();
        assert!(report.deterministic_pass(), "{}", report.render());
        // The seeded draw must have produced real degradations, and
        // every one of them must have been retried to completion.
        let retries: u64 = report.client_stats.iter().map(|c| c.retries).sum();
        let deadline: u64 = report.client_stats.iter().map(|c| c.deadline_misses).sum();
        assert!(deadline > 0, "seeded deadlines never fired");
        assert!(retries >= deadline, "every degradation costs a retry");
        assert_eq!(
            report.stats.counter(ServiceCounter::DeadlineRejected),
            deadline
        );
        assert!(report
            .responses
            .iter()
            .all(|r| r.body.starts_with("\"status\":\"ok\"")));
    }

    #[test]
    fn chaos_client_report_is_thread_invariant() {
        let mut a = quick(7);
        a.requests = 64;
        a.batch_size = 16;
        a.chaos_seed = Some(5);
        a.threads = 1;
        let mut b = a.clone();
        b.threads = 4;
        assert_eq!(run(&a).unwrap().json(), run(&b).unwrap().json());
    }

    #[test]
    fn small_cache_forces_deterministic_evictions() {
        let mut spec = quick(9);
        spec.capacity = 2;
        let a = run(&spec).unwrap();
        let b = run(&spec).unwrap();
        assert!(a.stats.counter(ServiceCounter::Evictions) > 0);
        assert_eq!(
            a.stats.counters_json(),
            b.stats.counters_json(),
            "eviction trajectory must replay exactly"
        );
    }
}
