//! The design tier: compiling a request's netlist into the reusable
//! evaluation artifact, and running trials against it.
//!
//! Compilation is the expensive half of a cold request — generator,
//! full STA, hold analysis, padding plan, schedule snapping. The
//! [`CompiledDesign`] it produces depends only on the fields in
//! [`crate::spec::EvalSpec::design_canonical`], so the engine caches it
//! separately from results: two requests sweeping schemes over the same
//! design pay for one compile.
//!
//! Evaluation ([`evaluate`]) then mirrors the soak harness's trial
//! shape — registry-built scheme, STA-derived sensitization profiles,
//! storm or nominal stress, escalation governor — and reduces the
//! trials (in canonical trial order) to one id-independent response
//! body. Determinism: the body is a pure function of the spec, which is
//! exactly what makes content-addressed caching sound.

use timber::CheckingPeriod;
use timber_lint::{snap_period, ScheduleSpec};
use timber_netlist::{
    alu, array_multiplier, kogge_stone_adder, pipelined_datapath, random_dag, ripple_carry_adder,
    CellLibrary, DatapathSpec, Netlist, Picos, RandomDagSpec,
};
use timber_pipeline::montecarlo::splitmix64;
use timber_pipeline::{GovernorConfig, PipelineConfig, PipelineSim, RunStats};
use timber_proc::structural::{proxy_netlist, stage_profiles_from_netlist};
use timber_proc::PerfPoint;
use timber_schemes::Registry;
use timber_sta::{ClockConstraint, HoldAnalysis, TimingAnalysis};
use timber_variability::{SensitizationModel, StagePathProfile, VariabilityBuilder};

use crate::spec::{DesignId, EvalSpec};

/// Stage-boundary count for the generator designs (the proc proxy
/// carries its own bank structure).
const STAGES: usize = 4;

/// The seed the structural processor proxy is pinned at — the same
/// netlist the lint gate ships.
const PROC_SEED: u64 = 11;

/// The cached product of the expensive compile step.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    /// Which design this artifact serves.
    pub design: DesignId,
    /// Snapped clock period (checking period quantises exactly).
    pub period: Picos,
    /// The interval schedule at that period.
    pub schedule: CheckingPeriod,
    /// Per-stage sensitization profiles derived from the netlist's STA
    /// arrival distribution.
    pub profiles: Vec<StagePathProfile>,
    /// Hold-padding plan summary: required min-delay floor.
    pub padding_floor: Picos,
    /// Endpoints the plan must pad.
    pub padding_endpoints: usize,
    /// Total inserted delay across all padded endpoints.
    pub padding_total: Picos,
    /// Flop count of the compiled netlist.
    pub flops: usize,
    /// Net count of the compiled netlist.
    pub nets: usize,
}

fn generator_netlist(design: DesignId) -> Netlist {
    let lib = CellLibrary::standard();
    match design {
        DesignId::Rca16 => ripple_carry_adder(&lib, 16).expect("generator"),
        DesignId::Ks16 => kogge_stone_adder(&lib, 16).expect("generator"),
        DesignId::Mul8 => array_multiplier(&lib, 8).expect("generator"),
        DesignId::Alu8 => alu(&lib, 8).expect("generator"),
        DesignId::RandomDag => random_dag(&lib, &RandomDagSpec::default()).expect("generator"),
        DesignId::Datapath => pipelined_datapath(&lib, &DatapathSpec::uniform(4, 12, 150, 0.7, 17))
            .expect("generator"),
        DesignId::Proc => proxy_netlist(PROC_SEED),
        DesignId::Poison => unreachable!("poison never reaches the generator"),
    }
}

/// Profiles for a generator design: critical / 90th-percentile / median
/// of the STA arrivals at flop D pins, replicated across the pipeline
/// stages (flop-free combinational designs fall back to the worst
/// primary-output arrival).
fn quantile_profiles(netlist: &Netlist, sta: &TimingAnalysis<'_>) -> Vec<StagePathProfile> {
    let mut arrivals: Vec<Picos> = netlist
        .flop_ids()
        .map(|f| sta.arrival(netlist.flop(f).d()))
        .filter(|&a| a > Picos::ZERO && a < Picos::MAX)
        .collect();
    let profile = if arrivals.is_empty() {
        StagePathProfile::from_critical(sta.worst_arrival())
    } else {
        arrivals.sort();
        let pick = |q: f64| arrivals[((arrivals.len() - 1) as f64 * q) as usize];
        let critical = *arrivals.last().expect("non-empty");
        let near = pick(0.90).min(critical);
        let typical = pick(0.50).min(near);
        StagePathProfile {
            critical,
            near_critical: near,
            typical,
            p_critical: 1e-3,
            p_near: 1e-2,
        }
    };
    vec![profile; STAGES]
}

/// Compiles a spec's design tier: generator → STA → guard-banded,
/// snapped period → schedule → sensitization profiles → hold padding
/// plan.
///
/// # Panics
///
/// Panics for [`DesignId::Poison`] — by contract, so the engine's
/// `catch_unwind` + quarantine path is exercised end to end (the serve
/// analogue of `repro soak --inject-panic`). Also panics on internal
/// contract violations (spec validation already bounds every schedule
/// parameter).
pub fn compile(spec: &EvalSpec) -> CompiledDesign {
    if spec.design == DesignId::Poison {
        panic!("poison design: compile fails by contract");
    }
    let schedule_spec = ScheduleSpec {
        checking_pct: spec.checking_pct,
        k_tb: spec.k_tb,
        k_ed: spec.k_ed,
        relay_increment: 1,
    };
    let netlist = generator_netlist(spec.design);
    let sta = TimingAnalysis::run(&netlist, &ClockConstraint::with_period(Picos(1_000_000)));
    // Same period derivation as the lint gate: the design's own
    // critical path with a 5% guard band plus setup, snapped so the
    // checking period quantises exactly onto the k intervals.
    let raw = sta.worst_arrival().scale(1.05) + Picos(30);
    let period = snap_period(raw, &schedule_spec);
    let schedule = CheckingPeriod::new(period, spec.checking_pct, spec.k_tb, spec.k_ed)
        .expect("snapped period admits the validated schedule");
    let profiles = if spec.design == DesignId::Proc {
        stage_profiles_from_netlist(&netlist, PerfPoint::High)
    } else {
        quantile_profiles(&netlist, &sta)
    };
    let plan = HoldAnalysis::run(&netlist, &ClockConstraint::with_period(period))
        .padding_plan(&netlist, schedule.checking());
    CompiledDesign {
        design: spec.design,
        period,
        schedule,
        profiles,
        padding_floor: plan.floor,
        padding_endpoints: plan.deficits.len(),
        padding_total: plan.total_padding,
        flops: netlist.flop_ids().count(),
        nets: netlist.net_ids().count(),
    }
}

/// Runs the spec's trials against a compiled design and reduces them to
/// the id-independent response body. Trial seeds derive from the base
/// seed via `splitmix64(seed, trial)`; merging happens in trial order,
/// so the body is byte-identical however the batch was scheduled.
pub fn evaluate(compiled: &CompiledDesign, spec: &EvalSpec) -> String {
    let stages = compiled.profiles.len();
    let registry = Registry::new(compiled.schedule, stages);
    let mut totals = RunStats::default();
    for trial in 0..spec.trials {
        let seed = splitmix64(spec.seed, trial as u64);
        let mut scheme = registry.build(spec.scheme, seed);
        let mut sens = SensitizationModel::new(compiled.profiles.clone(), seed ^ 0x5EED);
        let mut var = match spec.storm {
            Some(storm) => storm.build(stages, seed),
            // Nominal stress: mild droop plus fast local jitter.
            None => VariabilityBuilder::new(seed)
                .voltage_droop(0.05, 500, 2000.0)
                .local_jitter(0.005)
                .build(),
        };
        let mut config = PipelineConfig::new(stages, compiled.period);
        config.governor = Some(GovernorConfig::default());
        let stats = PipelineSim::new(config, scheme.as_mut(), &mut sens, &mut var).run(spec.cycles);
        totals.merge(&stats);
    }
    format!(
        "\"status\":\"ok\",\"key\":\"{}\",\"design\":\"{}\",\"scheme\":\"{}\",\"storm\":\"{}\",\
         \"period_ps\":{},\"checking_ps\":{},\
         \"padding\":{{\"floor_ps\":{},\"endpoints\":{},\"total_ps\":{}}},\
         \"netlist\":{{\"flops\":{},\"nets\":{}}},\
         \"trials\":{},\"cycles\":{},\"seed\":{},\
         \"totals\":{{\"instructions\":{},\"masked\":{},\"flagged\":{},\"detected\":{},\
         \"predicted\":{},\"corrupted\":{},\"penalty_cycles\":{},\"slow_cycles\":{},\
         \"escalations\":{},\"sim_time_ps\":{}}}",
        spec.key(),
        spec.design.name(),
        spec.scheme.name(),
        spec.storm_name(),
        compiled.period.as_ps(),
        compiled.schedule.checking().as_ps(),
        compiled.padding_floor.as_ps(),
        compiled.padding_endpoints,
        compiled.padding_total.as_ps(),
        compiled.flops,
        compiled.nets,
        spec.trials,
        spec.cycles,
        spec.seed,
        totals.instructions,
        totals.masked,
        totals.flagged,
        totals.detected,
        totals.predicted,
        totals.corrupted,
        totals.penalty_cycles,
        totals.slow_cycles,
        totals.slowdown_episodes,
        totals.wall_time.as_ps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_evaluable_design_compiles() {
        for design in DesignId::EVALUABLE {
            let spec = EvalSpec::defaults(design);
            let c = compile(&spec);
            assert!(c.period > Picos::ZERO, "{design:?}");
            assert!(!c.profiles.is_empty(), "{design:?}");
            for p in &c.profiles {
                p.validate();
            }
            // The snapped schedule must quantise exactly.
            assert_eq!(
                c.schedule.checking().as_ps() % i64::from(spec.k_tb + spec.k_ed),
                0,
                "{design:?}"
            );
        }
    }

    #[test]
    fn poison_design_panics_by_contract() {
        let spec = EvalSpec::defaults(DesignId::Poison);
        let err = std::panic::catch_unwind(|| compile(&spec)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("poison"), "{msg}");
    }

    #[test]
    fn evaluation_is_deterministic_and_id_free() {
        let spec = EvalSpec::defaults(DesignId::Rca16);
        let compiled = compile(&spec);
        let a = evaluate(&compiled, &spec);
        let b = evaluate(&compile(&spec), &spec);
        assert_eq!(a, b);
        assert!(!a.contains("\"id\""));
        assert!(a.contains(&format!("\"key\":\"{}\"", spec.key())));
    }

    #[test]
    fn seed_and_scheme_change_the_body() {
        let base = EvalSpec::defaults(DesignId::Rca16);
        let compiled = compile(&base);
        let mut reseeded = base;
        reseeded.seed = 8;
        let mut rescheme = base;
        rescheme.scheme = timber_schemes::SchemeId::ConventionalFf;
        assert_ne!(evaluate(&compiled, &base), evaluate(&compiled, &reseeded));
        assert_ne!(evaluate(&compiled, &base), evaluate(&compiled, &rescheme));
    }

    #[test]
    fn design_tier_is_schedule_sensitive() {
        let a = compile(&EvalSpec::defaults(DesignId::Ks16));
        let mut spec = EvalSpec::defaults(DesignId::Ks16);
        spec.checking_pct = 30.0;
        let b = compile(&spec);
        assert!(b.schedule.checking() > a.schedule.checking());
    }
}
