//! Transport: JSONL over stdin/stdout or a Unix domain socket.
//!
//! The daemon reads request lines, accumulates up to `batch_size` of
//! them, hands the batch to the [`Engine`], and writes the responses —
//! one JSON document per line, sorted by request id — before reading
//! on. A `{"op":"shutdown"}` request flushes its batch immediately and
//! ends the session (and, for the socket transport, the daemon), so a
//! client that terminates its burst with a shutdown request never
//! blocks waiting for the batch to fill. Clients that keep the daemon
//! running instead end a burst by closing (or half-closing) their
//! stream.
//!
//! Both transports share one engine and therefore one cache, journal
//! and stats stream; the transport never touches response bytes, so
//! stdin-driven gates and socket clients observe identical documents.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;

use crate::engine::Engine;

/// Default maximum batch size: bounds queue depth (and therefore
/// memory) without starving the work-pull executor of parallelism.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// Serves one line-oriented session. Returns `Ok(true)` if a shutdown
/// request ended it, `Ok(false)` on end-of-input.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &mut Engine,
    input: R,
    output: &mut W,
    batch_size: usize,
) -> io::Result<bool> {
    let batch_size = batch_size.max(1);
    let mut batch: Vec<String> = Vec::with_capacity(batch_size);
    let mut lines = input.lines();
    loop {
        batch.clear();
        let mut ended = false;
        while batch.len() < batch_size {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    // A shutdown request flushes the batch now: the
                    // client is done sending and is waiting on us.
                    let flush = matches!(
                        crate::spec::parse_request(&line, 0),
                        Ok(crate::spec::Request::Shutdown { .. })
                    );
                    batch.push(line);
                    if flush {
                        break;
                    }
                }
                None => {
                    ended = true;
                    break;
                }
            }
        }
        if batch.is_empty() && ended {
            return Ok(false);
        }
        let out = engine.process_batch(&batch)?;
        for r in &out.responses {
            writeln!(output, "{}", r.render())?;
        }
        output.flush()?;
        if out.shutdown {
            return Ok(true);
        }
        if ended {
            return Ok(false);
        }
    }
}

/// Binds `socket` and serves connections sequentially until a client
/// sends a shutdown request. The socket file is removed first (stale
/// daemon leftovers) and on clean shutdown.
pub fn serve_unix(engine: &mut Engine, socket: &Path, batch_size: usize) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    for conn in listener.incoming() {
        let stream = conn?;
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        if serve_lines(engine, reader, &mut writer, batch_size)? {
            break;
        }
    }
    let _ = std::fs::remove_file(socket);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn line_session_answers_in_id_order_and_honours_shutdown() {
        let input = concat!(
            "{\"id\":2,\"design\":\"rca16\"}\n",
            "{\"id\":1,\"design\":\"rca16\"}\n",
            "\n",
            "{\"op\":\"shutdown\",\"id\":3}\n",
            "{\"id\":4,\"design\":\"rca16\"}\n",
        );
        let mut out = Vec::new();
        let shutdown = serve_lines(
            &mut engine(),
            BufReader::new(input.as_bytes()),
            &mut out,
            64,
        )
        .unwrap();
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        let ids: Vec<&str> = text.lines().map(|l| &l[..l.find(',').unwrap()]).collect();
        // id 4 sits after the shutdown and is never served.
        assert_eq!(ids, vec!["{\"id\":1", "{\"id\":2", "{\"id\":3"]);
    }

    #[test]
    fn batch_size_one_still_serves_everything() {
        let input = "{\"id\":1,\"design\":\"rca16\"}\n{\"id\":2,\"design\":\"rca16\"}\n";
        let mut out = Vec::new();
        let shutdown =
            serve_lines(&mut engine(), BufReader::new(input.as_bytes()), &mut out, 1).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        // Second line was a cache hit on the first's result: identical
        // bodies behind different ids.
        let strip = |l: &str| l[l.find(',').unwrap()..].to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(strip(lines[0]), strip(lines[1]));
    }

    #[test]
    fn unix_socket_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("timber-serve-sock-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server_path = path.clone();
        let server = std::thread::spawn(move || {
            let mut e = engine();
            serve_unix(&mut e, &server_path, 8).unwrap();
        });
        // Wait for the listener to bind.
        let mut stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        stream
            .write_all(b"{\"id\":1,\"design\":\"rca16\"}\n{\"op\":\"shutdown\",\"id\":2}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains("\"status\":\"ok\""), "{first}");
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert!(second.contains("\"shutdown\":true"), "{second}");
        server.join().unwrap();
        assert!(!path.exists());
    }
}
