//! Content-addressed cache keys.
//!
//! A [`CacheKey`] is a 256-bit digest of a request's *canonical* spec
//! string ([`crate::spec::EvalSpec::canonical`]). The digest is a
//! blake-style wide-pipe sponge built from the splitmix64 finalizer:
//! four 64-bit lanes absorb the input in 8-byte words with per-lane
//! tweaks and cross-lane diffusion rounds, then the length is absorbed
//! and the state squeezed.
//!
//! It is **content addressing, not cryptography**: the construction
//! targets uniform dispersion and a 2⁻¹²⁸-ish accidental-collision
//! floor for cache lookup, and makes no claim against adversarial
//! preimages. Canonicalization, not hashing, carries the injectivity
//! burden — the property tests prove distinct specs canonicalize to
//! distinct strings, and this digest merely addresses those strings.

/// One splitmix64 finalizer round: the avalanche core the sponge mixes
/// with (identical to `timber_pipeline::montecarlo::splitmix64`'s
/// finalizer).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 256-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub [u64; 4]);

impl CacheKey {
    /// Lowercase hex rendering (64 chars) — the journal/ledger key and
    /// the `key` field of every response.
    pub fn hex(&self) -> String {
        format!(
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }

    /// Parses the [`CacheKey::hex`] rendering back into a key (used
    /// when replaying the durability journal). Returns `None` for
    /// anything but exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u64::from_str_radix(&s[i * 16..(i + 1) * 16], 16).ok()?;
        }
        Some(CacheKey(lanes))
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Digests `bytes` into a [`CacheKey`].
pub fn content_hash(bytes: &[u8]) -> CacheKey {
    // Distinct lane constants (splitmix64 gamma multiples) so an empty
    // input already has a non-degenerate state.
    let mut lanes: [u64; 4] = [
        0x9E37_79B9_7F4A_7C15,
        0x3C6E_F372_FE94_F82A,
        0xDAA6_6D2C_7DDF_743F,
        0x78DD_E6E5_FD29_F054,
    ];
    for (i, chunk) in bytes.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        // Absorb into one lane, then diffuse across all four so word
        // order matters in every lane.
        let lane = i % 4;
        lanes[lane] = mix(lanes[lane] ^ w);
        let carry = lanes[lane];
        for (j, l) in lanes.iter_mut().enumerate() {
            if j != lane {
                *l = mix(*l ^ carry.rotate_left(j as u32 * 17 + 1));
            }
        }
    }
    // Length padding: distinguishes trailing-zero-byte inputs of
    // different lengths from each other.
    let len = bytes.len() as u64;
    for (j, l) in lanes.iter_mut().enumerate() {
        *l = mix(*l ^ len.wrapping_add(j as u64));
    }
    // Final squeeze rounds.
    for _ in 0..2 {
        let all = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
        for l in lanes.iter_mut() {
            *l = mix(*l ^ all);
        }
    }
    CacheKey(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_is_64_lowercase_chars() {
        let k = content_hash(b"hello");
        assert_eq!(k.hex().len(), 64);
        assert!(k.hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(k.hex(), k.hex().to_lowercase());
    }

    #[test]
    fn digest_is_stable_across_calls() {
        assert_eq!(content_hash(b"spec"), content_hash(b"spec"));
    }

    #[test]
    fn nearby_inputs_diverge() {
        let base = content_hash(b"design=rca16;seed=7");
        for tweak in [
            &b"design=rca16;seed=8"[..],
            b"design=rca17;seed=7",
            b"design=rca16;seed=7 ",
            b"design=rca16;seed=70",
            b"",
        ] {
            assert_ne!(base, content_hash(tweak), "{tweak:?}");
        }
    }

    #[test]
    fn trailing_zero_bytes_change_the_digest() {
        // Length padding must separate zero-padded prefixes.
        assert_ne!(content_hash(b"ab"), content_hash(b"ab\0"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_ne!(content_hash(b"\0\0\0\0\0\0\0\0"), content_hash(b"\0"));
    }

    #[test]
    fn word_order_matters() {
        // Two 8-byte words swapped must not collide (cross-lane
        // diffusion makes absorption order-sensitive).
        let a = content_hash(b"AAAAAAAABBBBBBBB");
        let b = content_hash(b"BBBBBBBBAAAAAAAA");
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let k = content_hash(b"round trip");
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("abc"), None);
        assert_eq!(CacheKey::from_hex(&"z".repeat(64)), None);
        assert_eq!(CacheKey::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn keys_order_and_compare() {
        let mut keys: Vec<CacheKey> = (0..16u8).map(|i| content_hash(&[i])).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 16);
    }
}
