//! Service-level degradation ladder for the evaluation daemon.
//!
//! The resilience crate's `LadderGovernor` closes the loop on *timing*
//! error storms: a windowed flag-rate estimator drives a four-level
//! escalation ladder with hysteresis so the clock degrades gracefully
//! instead of failing. [`ServiceGovernor`] is the same control shape
//! lifted one layer up, to the serving daemon itself: the estimator
//! input is per-batch *cold demand* (distinct uncached keys a batch
//! asks for, whether admitted or shed) and the actuator is admission
//! control instead of clock period.
//!
//! # The ladder
//!
//! | level | name       | admission policy                              |
//! |-------|------------|-----------------------------------------------|
//! | 0     | nominal    | everything is served                          |
//! | 1     | shed-low   | low-priority cache misses are shed            |
//! | 2     | cache-only | every miss is shed; hits still served         |
//! | 3     | reject     | all eval requests rejected with `retry_after` |
//!
//! Cache hits keep flowing until the top rung — serving a memoized
//! result costs one digest and one map lookup, so shedding hits buys
//! nothing until the daemon is saturated outright.
//!
//! # Control law
//!
//! Each call to [`ServiceGovernor::observe_batch`] closes one
//! estimator window (= one engine batch) and actuates **at most one**
//! transition:
//!
//! * demand ≥ `escalate_backlog` for `hot_batches` consecutive batches
//!   → escalate one level;
//! * demand ≤ `deescalate_backlog` for `hold_batches` consecutive
//!   batches → de-escalate one level;
//! * the band between the thresholds is the hysteresis dead zone —
//!   streaks reset, the level holds.
//!
//! Demand counts *shed* cold keys too: if it only counted admitted
//! work, escalating to cache-only would zero the signal and the ladder
//! would flap between rungs every `hold_batches` batches while the
//! overload is still arriving.
//!
//! Everything is integer state driven by batch contents, so replays
//! are byte-identical for any thread count — the property the chaos
//! campaign gates on.

/// One rung of the service degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// Everything is served.
    Nominal,
    /// Low-priority cache misses are shed.
    ShedLow,
    /// Every miss is shed; hits are still served.
    CacheOnly,
    /// All eval requests rejected with a retry-after hint.
    Reject,
}

impl ServiceLevel {
    /// All levels, bottom to top.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::Nominal,
        ServiceLevel::ShedLow,
        ServiceLevel::CacheOnly,
        ServiceLevel::Reject,
    ];

    /// Ladder index (0 = nominal … 3 = reject).
    pub fn index(self) -> u8 {
        match self {
            ServiceLevel::Nominal => 0,
            ServiceLevel::ShedLow => 1,
            ServiceLevel::CacheOnly => 2,
            ServiceLevel::Reject => 3,
        }
    }

    /// Stable machine-readable name (used in shed-response bodies).
    pub fn name(self) -> &'static str {
        match self {
            ServiceLevel::Nominal => "nominal",
            ServiceLevel::ShedLow => "shed-low",
            ServiceLevel::CacheOnly => "cache-only",
            ServiceLevel::Reject => "reject",
        }
    }

    /// True if a cache hit is served at this level.
    pub fn serves_hits(self) -> bool {
        self != ServiceLevel::Reject
    }

    /// True if a cache miss with `high_priority` is admitted for
    /// evaluation at this level.
    pub fn admits_miss(self, high_priority: bool) -> bool {
        match self {
            ServiceLevel::Nominal => true,
            ServiceLevel::ShedLow => high_priority,
            ServiceLevel::CacheOnly | ServiceLevel::Reject => false,
        }
    }

    fn up(self) -> ServiceLevel {
        match self {
            ServiceLevel::Nominal => ServiceLevel::ShedLow,
            ServiceLevel::ShedLow => ServiceLevel::CacheOnly,
            ServiceLevel::CacheOnly | ServiceLevel::Reject => ServiceLevel::Reject,
        }
    }

    fn down(self) -> ServiceLevel {
        match self {
            ServiceLevel::Nominal | ServiceLevel::ShedLow => ServiceLevel::Nominal,
            ServiceLevel::CacheOnly => ServiceLevel::ShedLow,
            ServiceLevel::Reject => ServiceLevel::CacheOnly,
        }
    }
}

/// Tuning of the [`ServiceGovernor`] (all plain scalars, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceGovernorConfig {
    /// Cold demand at or above which a batch counts toward escalation.
    pub escalate_backlog: u64,
    /// Cold demand at or below which a batch counts toward
    /// de-escalation (must be `< escalate_backlog`: the hysteresis
    /// band).
    pub deescalate_backlog: u64,
    /// Consecutive hot batches required to step up one level.
    pub hot_batches: u64,
    /// Consecutive calm batches required to step down one level.
    pub hold_batches: u64,
}

impl Default for ServiceGovernorConfig {
    /// The inert default: the escalation threshold sits beyond any
    /// reachable batch demand, so a daemon that never opts in behaves
    /// exactly as before this ladder existed (level pinned at nominal,
    /// zero transitions). Chaos and storm chaos-client runs install
    /// [`ServiceGovernorConfig::tight`] instead.
    fn default() -> ServiceGovernorConfig {
        ServiceGovernorConfig {
            escalate_backlog: u64::MAX,
            deescalate_backlog: 0,
            hot_batches: 1,
            hold_batches: 1,
        }
    }
}

impl ServiceGovernorConfig {
    /// An aggressive config for chaos campaigns and storm chaos
    /// clients: escalate after one batch demanding ≥ 8 cold keys,
    /// de-escalate after two batches demanding ≤ 1.
    pub fn tight() -> ServiceGovernorConfig {
        ServiceGovernorConfig {
            escalate_backlog: 8,
            deescalate_backlog: 1,
            hot_batches: 1,
            hold_batches: 2,
        }
    }

    fn validate(&self) {
        assert!(
            self.deescalate_backlog < self.escalate_backlog,
            "hysteresis requires deescalate_backlog < escalate_backlog"
        );
        assert!(
            self.hot_batches > 0,
            "hot streak must be at least one batch"
        );
        assert!(
            self.hold_batches > 0,
            "hold streak must be at least one batch"
        );
    }
}

/// One actuated ladder transition, returned by
/// [`ServiceGovernor::observe_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTransition {
    /// Level left.
    pub from: ServiceLevel,
    /// Level entered.
    pub to: ServiceLevel,
}

impl ServiceTransition {
    /// True for an upward (escalating) transition.
    pub fn is_escalation(&self) -> bool {
        self.to > self.from
    }
}

/// The batch-granular admission-control governor. See the module docs
/// for the control law.
#[derive(Debug, Clone)]
pub struct ServiceGovernor {
    config: ServiceGovernorConfig,
    level: ServiceLevel,
    hot_streak: u64,
    calm_streak: u64,
    escalations: u64,
    deescalations: u64,
}

impl ServiceGovernor {
    /// Creates a governor at [`ServiceLevel::Nominal`].
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (inverted hysteresis band or
    /// a zero streak requirement).
    pub fn new(config: ServiceGovernorConfig) -> ServiceGovernor {
        config.validate();
        ServiceGovernor {
            config,
            level: ServiceLevel::Nominal,
            hot_streak: 0,
            calm_streak: 0,
            escalations: 0,
            deescalations: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceGovernorConfig {
        &self.config
    }

    /// Current ladder level.
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// Upward transitions actuated so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Downward transitions actuated so far.
    pub fn deescalations(&self) -> u64 {
        self.deescalations
    }

    /// Batches a rejected client should wait before retrying: the
    /// calm-streak length needed to step below [`ServiceLevel::Reject`],
    /// assuming demand stops.
    pub fn retry_after(&self) -> u64 {
        self.config.hold_batches * u64::from(self.level.index())
    }

    /// Closes one estimator window with the batch's cold demand
    /// (distinct uncached keys requested, shed ones included) and
    /// actuates at most one transition.
    pub fn observe_batch(&mut self, demand: u64) -> Option<ServiceTransition> {
        if demand >= self.config.escalate_backlog {
            self.hot_streak += 1;
            self.calm_streak = 0;
        } else if demand <= self.config.deescalate_backlog {
            self.calm_streak += 1;
            self.hot_streak = 0;
        } else {
            // Hysteresis dead zone: hold the level, reset both streaks.
            self.hot_streak = 0;
            self.calm_streak = 0;
        }
        let from = self.level;
        if self.hot_streak >= self.config.hot_batches && self.level != ServiceLevel::Reject {
            self.hot_streak = 0;
            self.level = from.up();
            self.escalations += 1;
        } else if self.calm_streak >= self.config.hold_batches
            && self.level != ServiceLevel::Nominal
        {
            self.calm_streak = 0;
            self.level = from.down();
            self.deescalations += 1;
        } else {
            return None;
        }
        Some(ServiceTransition {
            from,
            to: self.level,
        })
    }
}

impl Default for ServiceGovernor {
    fn default() -> ServiceGovernor {
        ServiceGovernor::new(ServiceGovernorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_default_never_escalates() {
        let mut g = ServiceGovernor::default();
        for _ in 0..1000 {
            assert!(g.observe_batch(u64::MAX - 1).is_none());
        }
        assert_eq!(g.level(), ServiceLevel::Nominal);
        assert_eq!(g.escalations(), 0);
        assert_eq!(g.deescalations(), 0);
    }

    #[test]
    fn sustained_demand_climbs_to_reject_and_stops() {
        let mut g = ServiceGovernor::new(ServiceGovernorConfig::tight());
        let mut ups = 0;
        for _ in 0..10 {
            if let Some(t) = g.observe_batch(64) {
                assert!(t.is_escalation());
                ups += 1;
            }
        }
        assert_eq!(g.level(), ServiceLevel::Reject);
        assert_eq!(ups, 3);
        assert_eq!(g.escalations(), 3);
    }

    #[test]
    fn calm_batches_walk_back_to_nominal() {
        let mut g = ServiceGovernor::new(ServiceGovernorConfig::tight());
        for _ in 0..3 {
            let _ = g.observe_batch(64);
        }
        assert_eq!(g.level(), ServiceLevel::Reject);
        let mut downs = 0;
        for _ in 0..12 {
            if let Some(t) = g.observe_batch(0) {
                assert!(!t.is_escalation());
                downs += 1;
            }
        }
        assert_eq!(g.level(), ServiceLevel::Nominal);
        assert_eq!(downs, 3);
        assert_eq!(g.deescalations(), 3);
    }

    #[test]
    fn dead_zone_holds_the_level_without_flapping() {
        let cfg = ServiceGovernorConfig {
            escalate_backlog: 8,
            deescalate_backlog: 1,
            hot_batches: 1,
            hold_batches: 2,
        };
        let mut g = ServiceGovernor::new(cfg);
        let _ = g.observe_batch(64);
        assert_eq!(g.level(), ServiceLevel::ShedLow);
        // Demand in (1, 8): neither streak advances.
        for _ in 0..50 {
            assert!(g.observe_batch(4).is_none());
        }
        assert_eq!(g.level(), ServiceLevel::ShedLow);
    }

    #[test]
    fn at_most_one_transition_per_batch() {
        let cfg = ServiceGovernorConfig {
            escalate_backlog: 1,
            deescalate_backlog: 0,
            hot_batches: 1,
            hold_batches: 1,
        };
        let mut g = ServiceGovernor::new(cfg);
        let t = g.observe_batch(1_000_000).unwrap();
        assert_eq!(t.from, ServiceLevel::Nominal);
        assert_eq!(t.to, ServiceLevel::ShedLow);
        assert_eq!(g.level(), ServiceLevel::ShedLow);
    }

    #[test]
    fn admission_policy_matches_the_table() {
        assert!(ServiceLevel::Nominal.admits_miss(false));
        assert!(ServiceLevel::ShedLow.admits_miss(true));
        assert!(!ServiceLevel::ShedLow.admits_miss(false));
        assert!(!ServiceLevel::CacheOnly.admits_miss(true));
        assert!(!ServiceLevel::Reject.admits_miss(true));
        assert!(ServiceLevel::CacheOnly.serves_hits());
        assert!(!ServiceLevel::Reject.serves_hits());
    }

    #[test]
    fn retry_after_scales_with_the_level() {
        let mut g = ServiceGovernor::new(ServiceGovernorConfig::tight());
        assert_eq!(g.retry_after(), 0);
        for _ in 0..3 {
            let _ = g.observe_batch(64);
        }
        assert_eq!(g.level(), ServiceLevel::Reject);
        assert_eq!(g.retry_after(), 6); // hold_batches (2) * index (3)
    }

    #[test]
    fn level_names_and_indices_are_stable() {
        for (i, l) in ServiceLevel::ALL.iter().enumerate() {
            assert_eq!(l.index() as usize, i);
        }
        assert_eq!(ServiceLevel::Reject.name(), "reject");
        assert_eq!(ServiceLevel::Nominal.up(), ServiceLevel::ShedLow);
        assert_eq!(ServiceLevel::Reject.up(), ServiceLevel::Reject);
        assert_eq!(ServiceLevel::Nominal.down(), ServiceLevel::Nominal);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_band_is_rejected() {
        let _ = ServiceGovernor::new(ServiceGovernorConfig {
            escalate_backlog: 2,
            deescalate_backlog: 2,
            hot_batches: 1,
            hold_batches: 1,
        });
    }
}
