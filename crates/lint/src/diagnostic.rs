//! Structured diagnostics with stable codes and human/JSON renderers.
//!
//! Every rule `timber-lint` checks has a stable code (`TBR001`,
//! `TBR002`, …) that scripts and CI gates can match on; the code also
//! fixes the severity, so a rule never silently changes from warning to
//! error between releases. The human renderer mimics compiler output
//! (`error[TBR040] u3: combinational loop: …`); the JSON renderer emits
//! one machine-readable document per linted configuration.

use std::fmt;

use serde_json::{json, Value};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the check ran and wants to document a decision.
    Note,
    /// The configuration is suspicious or wasteful but functional.
    Warn,
    /// The configuration violates a design rule and must not ship.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// Codes are append-only: a code is never renumbered or reused, so
/// `--deny`/CI filters keep working across versions. The code → invariant
/// table is documented in `DESIGN.md` §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// Schedule has no intervals (`k_tb + k_ed == 0`).
    EmptySchedule,
    /// Checking percentage outside `(0, 50]`.
    CheckingPercentRange,
    /// Clock period is not positive.
    NonPositivePeriod,
    /// Checking period not divisible by `k`; quantisation shrinks the
    /// usable window.
    CheckingNotDivisible,
    /// Relay select increment is zero or exceeds `k`.
    RelayIncrementRange,
    /// Relay increment exceeds `k_tb`, defeating deferred flagging.
    RelayIncrementSkipsTb,
    /// Endpoint min-delay path shorter than `hold + checking period`
    /// with no padding planned.
    UnpaddedShortPath,
    /// Padding plan exceeds the declared padding budget.
    PaddingBudgetExceeded,
    /// Padding plan summary (informational).
    PaddingPlan,
    /// Replaced flop fed by an unreplaced borrowing predecessor.
    RelayCoverageGap,
    /// Explicitly replaced flop terminates no top-c% path.
    SuperfluousReplacement,
    /// Relay consolidation network misses its half-cycle settle budget.
    RelayConsolidationTiming,
    /// Replacement plan names a flop the netlist does not have.
    UnknownReplacedFlop,
    /// Error-consolidation OR-tree exceeds the schedule's latency
    /// budget.
    ConsolidationBudget,
    /// Replacement set is empty; the integration is a no-op.
    NothingReplaced,
    /// Combinational loop (full cycle reported).
    CombinationalLoop,
    /// Net with more than one driver.
    MultiDrivenNet,
    /// Undriven net with loads.
    FloatingInput,
    /// Combinational cell whose output reaches no flop or primary
    /// output.
    UnreachableCell,
    /// Certified worst-case borrow exceeds the schedule's usable
    /// checking period (`timber-analyze` fixed point).
    CertifiedBorrowExceedsCapacity,
    /// Certified relay-chain length exceeds the schedule's maskable
    /// stages at the analyzed operating point.
    CertifiedChainExceedsMaskable,
    /// Consolidation latency exceeds the schedule's `k_ed − 1 + 0.5`
    /// cycle budget (certificate-level check).
    CertifiedConsolidationLatency,
    /// Governor ladder reachability disproved a published bound
    /// (recovery deadline or ladder-maximum period).
    GovernorBoundUnproven,
    /// Silent corruption reachable at the analyzed operating point.
    CorruptionReachable,
    /// A dynamic observation exceeded a static certificate bound in
    /// the soundness replay.
    SoundnessViolation,
    /// Timing checks were skipped because of earlier errors.
    TimingChecksSkipped,
}

impl DiagCode {
    /// The stable wire code, e.g. `"TBR001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::EmptySchedule => "TBR001",
            DiagCode::CheckingPercentRange => "TBR002",
            DiagCode::NonPositivePeriod => "TBR003",
            DiagCode::CheckingNotDivisible => "TBR004",
            DiagCode::RelayIncrementRange => "TBR005",
            DiagCode::RelayIncrementSkipsTb => "TBR006",
            DiagCode::UnpaddedShortPath => "TBR010",
            DiagCode::PaddingBudgetExceeded => "TBR011",
            DiagCode::PaddingPlan => "TBR012",
            DiagCode::RelayCoverageGap => "TBR020",
            DiagCode::SuperfluousReplacement => "TBR021",
            DiagCode::RelayConsolidationTiming => "TBR022",
            DiagCode::UnknownReplacedFlop => "TBR023",
            DiagCode::ConsolidationBudget => "TBR030",
            DiagCode::NothingReplaced => "TBR031",
            DiagCode::CombinationalLoop => "TBR040",
            DiagCode::MultiDrivenNet => "TBR041",
            DiagCode::FloatingInput => "TBR042",
            DiagCode::UnreachableCell => "TBR043",
            DiagCode::CertifiedBorrowExceedsCapacity => "TBR050",
            DiagCode::CertifiedChainExceedsMaskable => "TBR051",
            DiagCode::CertifiedConsolidationLatency => "TBR052",
            DiagCode::GovernorBoundUnproven => "TBR053",
            DiagCode::CorruptionReachable => "TBR054",
            DiagCode::SoundnessViolation => "TBR055",
            DiagCode::TimingChecksSkipped => "TBR090",
        }
    }

    /// Severity fixed by the code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::EmptySchedule
            | DiagCode::CheckingPercentRange
            | DiagCode::NonPositivePeriod
            | DiagCode::RelayIncrementRange
            | DiagCode::UnpaddedShortPath
            | DiagCode::PaddingBudgetExceeded
            | DiagCode::RelayCoverageGap
            | DiagCode::RelayConsolidationTiming
            | DiagCode::UnknownReplacedFlop
            | DiagCode::ConsolidationBudget
            | DiagCode::CombinationalLoop
            | DiagCode::MultiDrivenNet
            | DiagCode::FloatingInput
            | DiagCode::CertifiedBorrowExceedsCapacity
            | DiagCode::CertifiedChainExceedsMaskable
            | DiagCode::CertifiedConsolidationLatency
            | DiagCode::GovernorBoundUnproven
            | DiagCode::CorruptionReachable
            | DiagCode::SoundnessViolation => Severity::Error,
            DiagCode::CheckingNotDivisible
            | DiagCode::RelayIncrementSkipsTb
            | DiagCode::SuperfluousReplacement
            | DiagCode::UnreachableCell => Severity::Warn,
            DiagCode::PaddingPlan | DiagCode::NothingReplaced | DiagCode::TimingChecksSkipped => {
                Severity::Note
            }
        }
    }

    /// The paper section the invariant comes from, when one exists.
    pub fn paper_section(self) -> Option<&'static str> {
        match self {
            DiagCode::EmptySchedule
            | DiagCode::CheckingPercentRange
            | DiagCode::CheckingNotDivisible => Some("§4"),
            DiagCode::UnpaddedShortPath
            | DiagCode::PaddingBudgetExceeded
            | DiagCode::PaddingPlan => Some("§4"),
            DiagCode::ConsolidationBudget => Some("§4"),
            DiagCode::RelayIncrementRange
            | DiagCode::RelayIncrementSkipsTb
            | DiagCode::RelayCoverageGap
            | DiagCode::RelayConsolidationTiming => Some("§5.1"),
            DiagCode::SuperfluousReplacement | DiagCode::NothingReplaced => Some("§6"),
            DiagCode::CertifiedBorrowExceedsCapacity
            | DiagCode::CertifiedConsolidationLatency
            | DiagCode::GovernorBoundUnproven => Some("§4"),
            DiagCode::CertifiedChainExceedsMaskable
            | DiagCode::CorruptionReachable
            | DiagCode::SoundnessViolation => Some("§5.1"),
            _ => None,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding: a rule violation (or informational note) anchored to a
/// named design object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The offending net / instance / flop / config field name.
    pub subject: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Actionable fix suggestion, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic; severity comes from the code.
    pub fn new(
        code: DiagCode,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            subject: subject.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }

    /// Renders the compiler-style one-or-more-line form.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity,
            self.code.as_str(),
            self.subject,
            self.message
        );
        if let Some(hint) = &self.hint {
            out.push_str(&format!("\n  hint: {hint}"));
        }
        if let Some(section) = self.code.paper_section() {
            out.push_str(&format!("\n  ref: TIMBER paper {section}"));
        }
        out
    }

    fn to_json(&self) -> Value {
        json!({
            "code": self.code.as_str(),
            "severity": self.severity.to_string(),
            "subject": self.subject.clone(),
            "message": self.message.clone(),
            "hint": match &self.hint {
                Some(h) => Value::String(h.clone()),
                None => Value::Null,
            },
            "paper": match self.code.paper_section() {
                Some(s) => Value::String(s.to_owned()),
                None => Value::Null,
            },
        })
    }
}

/// All diagnostics from linting one configuration.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Name of the linted configuration (design + schedule).
    pub config_name: String,
    /// Findings in check order (schedule, structure, timing).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates an empty report for a named configuration.
    pub fn new(config_name: impl Into<String>) -> LintReport {
        LintReport {
            config_name: config_name.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when no diagnostic reaches the failure threshold:
    /// errors always fail; warnings fail only with `deny_warn`.
    pub fn passes(&self, deny_warn: bool) -> bool {
        self.count(Severity::Error) == 0 && !(deny_warn && self.count(Severity::Warn) > 0)
    }

    /// Error-severity diagnostics, in check order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Stable wire codes of the error-severity diagnostics, in check
    /// order — the rejection-reason strings `timber-tune` records for
    /// candidates the linter refuses.
    pub fn error_codes(&self) -> Vec<&'static str> {
        self.errors().map(|d| d.code.as_str()).collect()
    }

    /// Diagnostics carrying a given code.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the human-readable report block.
    pub fn render(&self) -> String {
        let mut out = format!("-- lint: {} --\n", self.config_name);
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.config_name,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note)
        ));
        out
    }

    /// The machine-readable document for this report.
    pub fn to_json(&self) -> Value {
        json!({
            "config": self.config_name.clone(),
            "summary": json!({
                "errors": self.count(Severity::Error),
                "warnings": self.count(Severity::Warn),
                "notes": self.count(Severity::Note),
            }),
            "diagnostics": Value::Array(self.diagnostics.iter().map(|d| d.to_json()).collect()),
        })
    }
}

/// Serialises a batch of reports as the `repro lint --json` document.
pub fn reports_json(reports: &[LintReport], deny_warn: bool) -> String {
    let all_pass = reports.iter().all(|r| r.passes(deny_warn));
    let doc = json!({
        "tool": "timber-lint",
        "schema_version": 1,
        "deny_warn": deny_warn,
        "pass": all_pass,
        "reports": Value::Array(reports.iter().map(LintReport::to_json).collect()),
    });
    serde_json::to_string_pretty(&doc).expect("lint document serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            DiagCode::EmptySchedule,
            DiagCode::CheckingPercentRange,
            DiagCode::NonPositivePeriod,
            DiagCode::CheckingNotDivisible,
            DiagCode::RelayIncrementRange,
            DiagCode::RelayIncrementSkipsTb,
            DiagCode::UnpaddedShortPath,
            DiagCode::PaddingBudgetExceeded,
            DiagCode::PaddingPlan,
            DiagCode::RelayCoverageGap,
            DiagCode::SuperfluousReplacement,
            DiagCode::RelayConsolidationTiming,
            DiagCode::UnknownReplacedFlop,
            DiagCode::ConsolidationBudget,
            DiagCode::NothingReplaced,
            DiagCode::CombinationalLoop,
            DiagCode::MultiDrivenNet,
            DiagCode::FloatingInput,
            DiagCode::UnreachableCell,
            DiagCode::CertifiedBorrowExceedsCapacity,
            DiagCode::CertifiedChainExceedsMaskable,
            DiagCode::CertifiedConsolidationLatency,
            DiagCode::GovernorBoundUnproven,
            DiagCode::CorruptionReachable,
            DiagCode::SoundnessViolation,
            DiagCode::TimingChecksSkipped,
        ];
        let mut seen = std::collections::HashSet::new();
        for code in all {
            assert!(code.as_str().starts_with("TBR"));
            assert_eq!(code.as_str().len(), 6);
            assert!(seen.insert(code.as_str()), "duplicate {}", code.as_str());
        }
    }

    #[test]
    fn severity_ordering_supports_thresholds() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Note);
    }

    #[test]
    fn report_pass_logic() {
        let mut r = LintReport::new("t");
        assert!(r.passes(false) && r.passes(true));
        r.push(Diagnostic::new(
            DiagCode::PaddingPlan,
            "padding",
            "2 buffers",
        ));
        assert!(r.passes(true), "notes never fail");
        r.push(Diagnostic::new(
            DiagCode::UnreachableCell,
            "u3",
            "output reaches nothing",
        ));
        assert!(r.passes(false));
        assert!(!r.passes(true), "--deny warn fails on warnings");
        r.push(Diagnostic::new(DiagCode::MultiDrivenNet, "n1", "2 drivers"));
        assert!(!r.passes(false));
    }

    #[test]
    fn render_includes_code_subject_and_hint() {
        let d = Diagnostic::new(
            DiagCode::UnpaddedShortPath,
            "flop f_short",
            "min-delay 40ps < floor 120ps",
        )
        .with_hint("insert 3 delay buffers");
        let text = d.render();
        assert!(text.contains("error[TBR010] flop f_short"));
        assert!(text.contains("hint: insert 3 delay buffers"));
        assert!(text.contains("paper §4"));
    }

    #[test]
    fn json_document_shape() {
        let mut r = LintReport::new("rca16@deferred");
        r.push(Diagnostic::new(DiagCode::CombinationalLoop, "u1", "loop"));
        let doc = reports_json(&[r], true);
        let v = serde_json::from_str(&doc).expect("valid json");
        assert_eq!(v["tool"], Value::String("timber-lint".into()));
        assert_eq!(v["pass"], Value::Bool(false));
        let rep = &v["reports"].as_array().unwrap()[0];
        assert_eq!(rep["summary"]["errors"], serde_json::json!(1));
        assert_eq!(
            rep["diagnostics"].as_array().unwrap()[0]["code"],
            Value::String("TBR040".into())
        );
    }
}
