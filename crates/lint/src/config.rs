//! Lint configuration: the schedule, constraint, padding policy, and
//! replacement plan that a netlist is checked against.
//!
//! A [`LintConfig`] describes one intended TIMBER integration. The
//! linter validates the configuration itself (schedule well-formedness)
//! and then the netlist against it (short-path safety, relay coverage,
//! consolidation latency).

use timber_netlist::{FlopId, Picos};
use timber_sta::ClockConstraint;

/// Checking-period schedule as *declared* — possibly invalid, which is
/// exactly what the linter exists to catch before
/// [`timber::CheckingPeriod`] would reject or a silicon respin would
/// reveal it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleSpec {
    /// Checking period as a percentage of the clock period.
    pub checking_pct: f64,
    /// Number of time-borrowing intervals.
    pub k_tb: u8,
    /// Number of error-detection intervals.
    pub k_ed: u8,
    /// How many intervals a relayed error advances a downstream select
    /// input per hop (the paper's rule uses 1).
    pub relay_increment: u8,
}

impl ScheduleSpec {
    /// The paper's deferred-flagging configuration: 1 TB + 2 ED
    /// intervals, relay increment 1.
    pub fn deferred(checking_pct: f64) -> ScheduleSpec {
        ScheduleSpec {
            checking_pct,
            k_tb: 1,
            k_ed: 2,
            relay_increment: 1,
        }
    }

    /// The paper's immediate-flagging configuration: 0 TB + 2 ED
    /// intervals, relay increment 1.
    pub fn immediate(checking_pct: f64) -> ScheduleSpec {
        ScheduleSpec {
            checking_pct,
            k_tb: 0,
            k_ed: 2,
            relay_increment: 1,
        }
    }

    /// Total interval count `k = k_tb + k_ed`.
    pub fn k(&self) -> u8 {
        self.k_tb.saturating_add(self.k_ed)
    }
}

/// How short-path padding deficits are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingPolicy {
    /// Buffers will be inserted wherever needed; deficits produce an
    /// informational plan summary (`TBR012`).
    Auto,
    /// No padding is planned; any unpadded short path is an error
    /// (`TBR010`).
    None,
    /// Padding up to this much total delay is acceptable; exceeding it
    /// is an error (`TBR011`).
    Budget(Picos),
}

/// Which flip-flops become TIMBER elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplacementPlan {
    /// Replace every flop ending a top-c% critical path (the paper's
    /// §6 rule); always relay-complete by construction.
    TopC,
    /// Replace exactly these flops; the linter checks the set for
    /// relay-coverage gaps (`TBR020`) and superfluous members
    /// (`TBR021`).
    Explicit(Vec<FlopId>),
}

/// One TIMBER integration to lint a netlist against.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Configuration name (used in report headers and JSON).
    pub name: String,
    /// Declared checking-period schedule.
    pub schedule: ScheduleSpec,
    /// Clock constraint the design is analysed under.
    pub constraint: ClockConstraint,
    /// Short-path padding policy.
    pub padding: PaddingPolicy,
    /// Replacement plan.
    pub replacement: ReplacementPlan,
}

impl LintConfig {
    /// Creates a config with the defaults used by shipped gates:
    /// automatic padding and top-c% replacement.
    pub fn new(
        name: impl Into<String>,
        schedule: ScheduleSpec,
        constraint: ClockConstraint,
    ) -> LintConfig {
        LintConfig {
            name: name.into(),
            schedule,
            constraint,
            padding: PaddingPolicy::Auto,
            replacement: ReplacementPlan::TopC,
        }
    }

    /// Replaces the padding policy.
    pub fn with_padding(mut self, padding: PaddingPolicy) -> LintConfig {
        self.padding = padding;
        self
    }

    /// Replaces the replacement plan.
    pub fn with_replacement(mut self, replacement: ReplacementPlan) -> LintConfig {
        self.replacement = replacement;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configurations() {
        let d = ScheduleSpec::deferred(30.0);
        assert_eq!((d.k_tb, d.k_ed, d.relay_increment), (1, 2, 1));
        assert_eq!(d.k(), 3);
        let i = ScheduleSpec::immediate(30.0);
        assert_eq!((i.k_tb, i.k_ed), (0, 2));
        assert_eq!(i.k(), 2);
    }

    #[test]
    fn builder_defaults() {
        let cfg = LintConfig::new(
            "t",
            ScheduleSpec::deferred(20.0),
            ClockConstraint::with_period(Picos(1000)),
        );
        assert_eq!(cfg.padding, PaddingPolicy::Auto);
        assert_eq!(cfg.replacement, ReplacementPlan::TopC);
        let cfg = cfg
            .with_padding(PaddingPolicy::Budget(Picos(500)))
            .with_replacement(ReplacementPlan::Explicit(vec![FlopId(0)]));
        assert_eq!(cfg.padding, PaddingPolicy::Budget(Picos(500)));
        assert!(matches!(cfg.replacement, ReplacementPlan::Explicit(_)));
    }
}
