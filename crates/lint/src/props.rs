//! Property-based tests: every shipped generator is lint-clean, and
//! seeded defect injection is always caught with the expected code.

#![cfg(test)]

use proptest::prelude::*;

use timber_netlist::{
    alu, array_multiplier, kogge_stone_adder, pipelined_datapath, random_dag, ripple_carry_adder,
    CellLibrary, DatapathSpec, InstId, Netlist, NetlistBuilder, Picos, RandomDagSpec,
};
use timber_sta::{ClockConstraint, TimingAnalysis};

use crate::config::{LintConfig, ScheduleSpec};
use crate::diagnostic::{DiagCode, Severity};
use crate::linter::lint;
use crate::schedule::snap_period;

/// A lint config derived from the design's own critical path, the way
/// the shipped CI gate builds one.
fn config_for(netlist: &Netlist, checking_pct: f64) -> LintConfig {
    let spec = ScheduleSpec::deferred(checking_pct);
    let sta = TimingAnalysis::run(netlist, &ClockConstraint::with_period(Picos(1_000_000)));
    let raw = sta.worst_arrival().scale(1.05) + Picos(30);
    let period = snap_period(raw, &spec);
    LintConfig::new(
        format!("deferred{checking_pct}"),
        spec,
        ClockConstraint::with_period(period),
    )
}

fn assert_clean(netlist: &Netlist, checking_pct: f64) {
    let report = lint(netlist, &config_for(netlist, checking_pct));
    assert!(
        report.passes(true),
        "generator output must be lint-clean:\n{}",
        report.render()
    );
}

/// A small design for injection tests: a three-gate cone into a flop,
/// returned as the builder (so a defect can be spliced in) plus the
/// three gate output nets.
fn seed_builder(lib: &CellLibrary) -> (NetlistBuilder<'_>, [timber_netlist::NetId; 3]) {
    let mut b = NetlistBuilder::new("seed", lib);
    let a = b.input("a");
    let c = b.input("b");
    let x = b.gate("nand2", &[a, c]).unwrap();
    let y = b.gate("inv", &[x]).unwrap();
    let z = b.gate("and2", &[y, c]).unwrap();
    let q = b.flop("f", z);
    b.output("o", q);
    (b, [x, y, z])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arithmetic generators produce lint-clean netlists at every
    /// paper checking percentage.
    #[test]
    fn arithmetic_generators_are_lint_clean(
        width in 2usize..=8,
        c_idx in 0usize..4,
    ) {
        let c = [10.0, 20.0, 30.0, 40.0][c_idx];
        let lib = CellLibrary::standard();
        assert_clean(&ripple_carry_adder(&lib, width).unwrap(), c);
        assert_clean(&kogge_stone_adder(&lib, width).unwrap(), c);
        assert_clean(&alu(&lib, width).unwrap(), c);
    }

    /// The array multiplier (the largest arithmetic generator) is
    /// lint-clean.
    #[test]
    fn multiplier_is_lint_clean(width in 2usize..=6) {
        let lib = CellLibrary::standard();
        assert_clean(&array_multiplier(&lib, width).unwrap(), 30.0);
    }

    /// Random DAGs and pipelined datapaths are lint-clean for any seed.
    #[test]
    fn structural_generators_are_lint_clean(seed in 0u64..100) {
        let lib = CellLibrary::standard();
        let dag = random_dag(&lib, &RandomDagSpec {
            inputs: 6, outputs: 6, gates: 80, depth_bias: 0.6, seed,
        }).unwrap();
        assert_clean(&dag, 30.0);
        let dp = pipelined_datapath(
            &lib,
            &DatapathSpec::uniform(3, 8, 90, 0.7, seed),
        ).unwrap();
        assert_clean(&dp, 30.0);
    }

    /// A spliced combinational back-edge is always caught as TBR040,
    /// never a panic, wherever it lands.
    #[test]
    fn spliced_back_edge_is_caught(pin in 0usize..2) {
        let lib = CellLibrary::standard();
        let (mut b, [_, _, z]) = seed_builder(&lib);
        // Feed the last gate's output back into the first gate.
        b.rewire_input(InstId(0), pin, z);
        let nl = b.finish_unchecked();
        let report = lint(&nl, &config_for_defect());
        let loops = report.with_code(DiagCode::CombinationalLoop);
        prop_assert!(!loops.is_empty(), "{}", report.render());
        prop_assert!(loops[0].message.contains(" -> "), "{}", loops[0].message);
        prop_assert!(!report.passes(false));
        prop_assert_eq!(report.with_code(DiagCode::TimingChecksSkipped).len(), 1);
    }

    /// A doubled driver is always caught as TBR041.
    #[test]
    fn doubled_driver_is_caught(victim in 0usize..2) {
        let lib = CellLibrary::standard();
        let (mut b, nets) = seed_builder(&lib);
        b.rewire_output(InstId(2), nets[victim]);
        let nl = b.finish_unchecked();
        let report = lint(&nl, &config_for_defect());
        prop_assert!(!report.with_code(DiagCode::MultiDrivenNet).is_empty(),
            "{}", report.render());
        prop_assert!(!report.passes(false));
    }

    /// A disconnected input pin is always caught as TBR042.
    #[test]
    fn disconnected_input_is_caught(inst in 0u32..3) {
        let lib = CellLibrary::standard();
        let (mut b, _) = seed_builder(&lib);
        let dangling = b.floating_net("dangling");
        b.rewire_input(InstId(inst), 0, dangling);
        let nl = b.finish_unchecked();
        let report = lint(&nl, &config_for_defect());
        let floats = report.with_code(DiagCode::FloatingInput);
        prop_assert!(!floats.is_empty(), "{}", report.render());
        prop_assert!(floats[0].subject.contains("dangling"));
        prop_assert!(!report.passes(false));
    }
}

/// Fixed config for defect-injection tests (the netlist is broken, so
/// its critical path cannot be measured first).
fn config_for_defect() -> LintConfig {
    LintConfig::new(
        "defect",
        ScheduleSpec::deferred(30.0),
        ClockConstraint::with_period(Picos(1000)),
    )
}

#[test]
fn generators_clean_under_immediate_flagging_too() {
    let lib = CellLibrary::standard();
    let nl = pipelined_datapath(&lib, &DatapathSpec::uniform(4, 12, 150, 0.7, 17)).unwrap();
    let spec = ScheduleSpec::immediate(20.0);
    let sta = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(1_000_000)));
    let period = snap_period(sta.worst_arrival().scale(1.05) + Picos(30), &spec);
    let cfg = LintConfig::new("immediate20", spec, ClockConstraint::with_period(period));
    let report = lint(&nl, &cfg);
    assert_eq!(report.count(Severity::Error), 0, "{}", report.render());
    assert_eq!(report.count(Severity::Warn), 0, "{}", report.render());
}
