//! The lint orchestrator: schedule → structure → timing.

use timber_netlist::Netlist;

use crate::config::LintConfig;
use crate::diagnostic::{DiagCode, Diagnostic, LintReport, Severity};
use crate::schedule::check_schedule;
use crate::structure::check_structure;
use crate::timing::check_timing;

/// Lints one netlist against one intended TIMBER integration.
///
/// Check order matters: the timing rules assume an acyclic,
/// single-driven netlist and a buildable schedule, so they only run when
/// the schedule and structure passes produced no errors. In that case a
/// [`DiagCode::TimingChecksSkipped`] note records the gap — a report
/// that says nothing about short paths is not claiming they are safe.
pub fn lint(netlist: &Netlist, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new(format!("{}@{}", netlist.name(), config.name));
    let schedule = check_schedule(&config.schedule, config.constraint.period, &mut report);
    check_structure(netlist, &mut report);
    match (schedule, report.count(Severity::Error)) {
        (Some(schedule), 0) => check_timing(netlist, config, &schedule, &mut report),
        _ => {
            report.push(Diagnostic::new(
                DiagCode::TimingChecksSkipped,
                "timing",
                "short-path, relay, and consolidation checks skipped until the \
                 schedule and structural errors above are fixed",
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PaddingPolicy, ReplacementPlan, ScheduleSpec};
    use timber_netlist::{CellLibrary, FlopId, InstId, NetlistBuilder, Picos};
    use timber_sta::{ClockConstraint, TimingAnalysis};

    fn datapath() -> Netlist {
        let lib = CellLibrary::standard();
        timber_netlist::pipelined_datapath(
            &lib,
            &timber_netlist::DatapathSpec::uniform(4, 12, 150, 0.7, 17),
        )
        .unwrap()
    }

    fn period_for(nl: &Netlist, spec: &ScheduleSpec) -> Picos {
        let sta = TimingAnalysis::run(nl, &ClockConstraint::with_period(Picos(100_000)));
        let raw = sta.worst_arrival().scale(1.05) + Picos(30);
        crate::schedule::snap_period(raw, spec)
    }

    fn clean_config(nl: &Netlist) -> LintConfig {
        let spec = ScheduleSpec::deferred(30.0);
        let period = period_for(nl, &spec);
        LintConfig::new("deferred30", spec, ClockConstraint::with_period(period))
    }

    #[test]
    fn shipped_style_config_is_clean() {
        let nl = datapath();
        let report = lint(&nl, &clean_config(&nl));
        assert_eq!(report.count(Severity::Error), 0, "{}", report.render());
        assert_eq!(report.count(Severity::Warn), 0, "{}", report.render());
        assert!(report.passes(true));
    }

    #[test]
    fn structural_error_skips_timing_with_note() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("loop", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("inv", &[x]).unwrap();
        let q = b.flop("f", y);
        b.output("o", q);
        b.rewire_input(InstId(0), 0, y);
        let nl = b.finish_unchecked();
        let cfg = LintConfig::new(
            "c",
            ScheduleSpec::deferred(20.0),
            ClockConstraint::with_period(Picos(1000)),
        );
        let report = lint(&nl, &cfg);
        assert!(!report.passes(false));
        assert_eq!(report.with_code(DiagCode::CombinationalLoop).len(), 1);
        assert_eq!(report.with_code(DiagCode::TimingChecksSkipped).len(), 1);
        assert!(report.with_code(DiagCode::UnpaddedShortPath).is_empty());
    }

    #[test]
    fn unpadded_short_path_names_endpoint_and_code() {
        // Flop-to-flop wire with zero logic: min arrival (clk_to_q =
        // 40ps) is far below hold + checking on any realistic schedule.
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("short", &lib);
        let a = b.input("a");
        let mut x = b.flop("f_src", a);
        let q_src = x;
        for _ in 0..20 {
            x = b.gate("buf", &[x]).unwrap();
        }
        let q1 = b.flop("f_crit", x);
        let q2 = b.flop("f_short", q_src);
        b.output("o1", q1);
        b.output("o2", q2);
        let nl = b.finish().unwrap();
        let spec = ScheduleSpec::deferred(30.0);
        let period = period_for(&nl, &spec);
        let cfg = LintConfig::new("nopad", spec, ClockConstraint::with_period(period))
            .with_padding(PaddingPolicy::None);
        let report = lint(&nl, &cfg);
        assert!(!report.passes(false));
        let short = report.with_code(DiagCode::UnpaddedShortPath);
        assert!(!short.is_empty());
        assert!(
            short.iter().any(|d| d.subject.contains("f_short")),
            "{}",
            report.render()
        );
        assert!(short[0].render().contains("TBR010"));
    }

    #[test]
    fn explicit_plan_with_coverage_gap_is_tbr020() {
        // Two critical stages in a row: f_mid both starts and ends
        // critical paths, f_end ends one. Replacing only f_end leaves
        // f_mid's borrow unrelayable.
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("gap", &lib);
        let a = b.input("a");
        let mut x = b.flop("f_src", a);
        for _ in 0..10 {
            x = b.gate("buf", &[x]).unwrap();
        }
        let mut y = b.flop("f_mid", x);
        for _ in 0..10 {
            y = b.gate("buf", &[y]).unwrap();
        }
        let q = b.flop("f_end", y);
        b.output("o", q);
        let nl = b.finish().unwrap();
        let spec = ScheduleSpec::deferred(30.0);
        let period = period_for(&nl, &spec);
        let cfg = LintConfig::new("partial", spec, ClockConstraint::with_period(period))
            .with_replacement(ReplacementPlan::Explicit(vec![FlopId(2)]));
        let report = lint(&nl, &cfg);
        let gaps = report.with_code(DiagCode::RelayCoverageGap);
        assert_eq!(gaps.len(), 1, "{}", report.render());
        assert!(gaps[0].subject.contains("f_end"));
        assert!(gaps[0].message.contains("f_mid"));
        assert!(!report.passes(false));
    }

    #[test]
    fn explicit_plan_out_of_range_is_tbr023() {
        let nl = datapath();
        let mut cfg = clean_config(&nl);
        cfg.replacement = ReplacementPlan::Explicit(vec![FlopId(10_000)]);
        let report = lint(&nl, &cfg);
        assert_eq!(report.with_code(DiagCode::UnknownReplacedFlop).len(), 1);
    }

    #[test]
    fn tight_padding_budget_is_tbr011() {
        let nl = datapath();
        let mut cfg = clean_config(&nl);
        cfg.padding = PaddingPolicy::Budget(Picos(1));
        let report = lint(&nl, &cfg);
        // The datapath needs some padding at c=30%; a 1ps budget fails.
        assert_eq!(
            report.with_code(DiagCode::PaddingBudgetExceeded).len(),
            1,
            "{}",
            report.render()
        );
    }

    #[test]
    fn nothing_replaced_is_a_note_only() {
        // A single-stage design with a huge period: nothing is critical.
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("idle", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        let q = b.flop("f", x);
        b.output("o", q);
        let nl = b.finish().unwrap();
        let cfg = LintConfig::new(
            "huge",
            ScheduleSpec::deferred(10.0),
            ClockConstraint::with_period(Picos(1_000_000)),
        );
        let report = lint(&nl, &cfg);
        assert_eq!(report.with_code(DiagCode::NothingReplaced).len(), 1);
        assert_eq!(report.count(Severity::Error), 0, "{}", report.render());
    }
}
