//! Structural lints (`TBR040`–`TBR043`): loops, driver conflicts,
//! floating inputs, unreachable cells.
//!
//! These rules run on netlists of unknown provenance — including ones
//! built with [`timber_netlist::NetlistBuilder::finish_unchecked`] —
//! so nothing here trusts the cached per-net `driver` field. The driver
//! census is recomputed from the instance/flop/primary-input records,
//! which is exactly how a doubled driver becomes visible.

use std::collections::VecDeque;

use timber_netlist::{combinational_cycles, cycle_net_names, InstId, Netlist, Sink};

use crate::diagnostic::{DiagCode, Diagnostic, LintReport};

/// Runs every structural check, appending findings to `report`.
pub fn check_structure(netlist: &Netlist, report: &mut LintReport) {
    check_drivers(netlist, report);
    check_loops(netlist, report);
    check_reachability(netlist, report);
}

fn sink_label(netlist: &Netlist, sink: &Sink) -> String {
    match *sink {
        Sink::InstancePin(inst, pin) => {
            format!("instance \"{}\" pin {}", netlist.instance(inst).name(), pin)
        }
        Sink::FlopD(f) => format!("flop \"{}\" D", netlist.flop(f).name()),
        Sink::PrimaryOutput => "primary output".to_owned(),
    }
}

/// Recomputes each net's true driver set and flags conflicts
/// (`TBR041`) and undriven-but-loaded nets (`TBR042`).
fn check_drivers(netlist: &Netlist, report: &mut LintReport) {
    let mut drivers: Vec<Vec<String>> = vec![Vec::new(); netlist.net_count()];
    for &pi in netlist.primary_inputs() {
        drivers[pi.0 as usize].push("primary input".to_owned());
    }
    for inst_id in netlist.instance_ids() {
        let inst = netlist.instance(inst_id);
        drivers[inst.output().0 as usize].push(format!("instance \"{}\"", inst.name()));
    }
    for f in netlist.flop_ids() {
        let flop = netlist.flop(f);
        drivers[flop.q().0 as usize].push(format!("flop \"{}\" Q", flop.name()));
    }
    for net_id in netlist.net_ids() {
        let net = netlist.net(net_id);
        let who = &drivers[net_id.0 as usize];
        if who.len() > 1 {
            report.push(
                Diagnostic::new(
                    DiagCode::MultiDrivenNet,
                    format!("net \"{}\"", net.name()),
                    format!("{} drivers contend: {}", who.len(), who.join(", ")),
                )
                .with_hint("every net must have exactly one driver; split or buffer the sources"),
            );
        } else if who.is_empty() && !net.fanout().is_empty() {
            let loads: Vec<String> = net
                .fanout()
                .iter()
                .map(|s| sink_label(netlist, s))
                .collect();
            report.push(
                Diagnostic::new(
                    DiagCode::FloatingInput,
                    format!("net \"{}\"", net.name()),
                    format!(
                        "undriven net feeds {} load(s): {}",
                        loads.len(),
                        loads.join(", ")
                    ),
                )
                .with_hint("connect the net to a driver or tie it to a constant"),
            );
        }
    }
}

/// Reports every combinational loop region with its full cycle path
/// (`TBR040`).
fn check_loops(netlist: &Netlist, report: &mut LintReport) {
    for cycle in combinational_cycles(netlist) {
        let nets = cycle_net_names(netlist, &cycle);
        let mut path = nets.join(" -> ");
        if let Some(first) = nets.first() {
            path.push_str(" -> ");
            path.push_str(first);
        }
        let subject = cycle
            .first()
            .map(|&i| format!("instance \"{}\"", netlist.instance(i).name()))
            .unwrap_or_else(|| "netlist".to_owned());
        report.push(
            Diagnostic::new(
                DiagCode::CombinationalLoop,
                subject,
                format!("combinational loop: {path}"),
            )
            .with_hint("break the cycle with a flip-flop or remove the feedback arc"),
        );
    }
}

/// Flags combinational cells whose output reaches no flop D pin or
/// primary output (`TBR043`).
fn check_reachability(netlist: &Netlist, report: &mut LintReport) {
    // Which instances drive each net, from the census (the cached
    // driver field may be stale on defective netlists).
    let mut inst_driving: Vec<Vec<InstId>> = vec![Vec::new(); netlist.net_count()];
    for inst_id in netlist.instance_ids() {
        let out = netlist.instance(inst_id).output();
        inst_driving[out.0 as usize].push(inst_id);
    }

    // A net is useful when something observable consumes it; walk
    // backwards from flop D pins and primary outputs.
    let mut useful_net = vec![false; netlist.net_count()];
    let mut queue = VecDeque::new();
    for net_id in netlist.net_ids() {
        let observed = netlist
            .net(net_id)
            .fanout()
            .iter()
            .any(|s| matches!(s, Sink::FlopD(_) | Sink::PrimaryOutput));
        if observed {
            useful_net[net_id.0 as usize] = true;
            queue.push_back(net_id);
        }
    }
    let mut useful_inst = vec![false; netlist.instance_count()];
    while let Some(net_id) = queue.pop_front() {
        for &inst_id in &inst_driving[net_id.0 as usize] {
            if useful_inst[inst_id.0 as usize] {
                continue;
            }
            useful_inst[inst_id.0 as usize] = true;
            for &input in netlist.instance(inst_id).inputs() {
                if !useful_net[input.0 as usize] {
                    useful_net[input.0 as usize] = true;
                    queue.push_back(input);
                }
            }
        }
    }

    for inst_id in netlist.instance_ids() {
        if !useful_inst[inst_id.0 as usize] {
            report.push(
                Diagnostic::new(
                    DiagCode::UnreachableCell,
                    format!("instance \"{}\"", netlist.instance(inst_id).name()),
                    "output reaches no flip-flop or primary output".to_owned(),
                )
                .with_hint("remove the dead logic or connect its output"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use timber_netlist::{CellLibrary, InstId, NetlistBuilder};

    fn lint_structure(netlist: &Netlist) -> LintReport {
        let mut report = LintReport::new("structure");
        check_structure(netlist, &mut report);
        report
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let lib = CellLibrary::standard();
        let nl = timber_netlist::ripple_carry_adder(&lib, 4).unwrap();
        let report = lint_structure(&nl);
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn back_edge_is_tbr040_with_full_path() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("loop", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("inv", &[x]).unwrap();
        let z = b.gate("inv", &[y]).unwrap();
        b.output("o", z);
        // Splice the back-edge: first inv now reads the last inv.
        b.rewire_input(InstId(0), 0, z);
        let nl = b.finish_unchecked();
        let report = lint_structure(&nl);
        let loops = report.with_code(DiagCode::CombinationalLoop);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].severity, Severity::Error);
        // The full 3-instance cycle, closed back on the first net.
        let arrows = loops[0].message.matches(" -> ").count();
        assert_eq!(arrows, 3, "message: {}", loops[0].message);
    }

    #[test]
    fn doubled_driver_is_tbr041() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("dd", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate("inv", &[a]).unwrap();
        let _y = b.gate("inv", &[c]).unwrap();
        let q = b.flop("f", x);
        b.output("o", q);
        // Point the second inverter's output at the first's net.
        b.rewire_output(InstId(1), x);
        let nl = b.finish_unchecked();
        let report = lint_structure(&nl);
        let diags = report.with_code(DiagCode::MultiDrivenNet);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("2 drivers"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn disconnected_input_is_tbr042() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("float", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate("nand2", &[a, c]).unwrap();
        let q = b.flop("f", x);
        b.output("o", q);
        let dangling = b.floating_net("dangling");
        b.rewire_input(InstId(0), 1, dangling);
        let nl = b.finish_unchecked();
        let report = lint_structure(&nl);
        let diags = report.with_code(DiagCode::FloatingInput);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].subject.contains("dangling"));
        assert!(diags[0].message.contains("pin 1"), "{}", diags[0].message);
    }

    #[test]
    fn dead_logic_is_tbr043_warning() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("dead", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        b.output("o", x);
        // A second gate nobody consumes, plus one only it consumes.
        let d1 = b.gate("inv", &[a]).unwrap();
        let _d2 = b.gate("buf", &[d1]).unwrap();
        let nl = b.finish().unwrap();
        let report = lint_structure(&nl);
        let diags = report.with_code(DiagCode::UnreachableCell);
        assert_eq!(diags.len(), 2, "{}", report.render());
        assert!(diags.iter().all(|d| d.severity == Severity::Warn));
        assert_eq!(report.count(Severity::Error), 0);
    }

    #[test]
    fn unreachable_cycle_does_not_hang_reachability() {
        // A loop that also feeds an output: reachability must terminate
        // and the loop itself is reported by TBR040.
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("loop2", &lib);
        let a = b.input("a");
        let x = b.gate("and2", &[a, a]).unwrap();
        let y = b.gate("or2", &[x, a]).unwrap();
        b.output("o", y);
        b.rewire_input(InstId(0), 1, y);
        let nl = b.finish_unchecked();
        let report = lint_structure(&nl);
        assert_eq!(report.with_code(DiagCode::CombinationalLoop).len(), 1);
        // Both gates still reach the primary output.
        assert!(report.with_code(DiagCode::UnreachableCell).is_empty());
    }
}
