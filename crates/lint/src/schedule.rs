//! Schedule well-formedness checks (`TBR001`–`TBR006`).
//!
//! These mirror the invariants [`timber::CheckingPeriod::new`] enforces
//! (paper §4) but report *all* violations with stable codes instead of
//! failing on the first, plus two rules the constructor cannot see:
//! checking-period quantisation (`TBR004`) and relay-increment sanity
//! against the interval split (`TBR005`/`TBR006`, §5.1).

use timber::CheckingPeriod;
use timber_netlist::Picos;

use crate::config::ScheduleSpec;
use crate::diagnostic::{DiagCode, Diagnostic, LintReport};

/// Checks a declared schedule against a clock period.
///
/// Returns the validated [`CheckingPeriod`] when one can be built (the
/// timing checks need it); `None` when the declaration is structurally
/// unbuildable. Diagnostics land in `report` either way.
pub fn check_schedule(
    spec: &ScheduleSpec,
    period: Picos,
    report: &mut LintReport,
) -> Option<CheckingPeriod> {
    let mut buildable = true;
    if spec.k() == 0 {
        report.push(
            Diagnostic::new(
                DiagCode::EmptySchedule,
                "schedule",
                "schedule has no intervals (k_tb + k_ed = 0)",
            )
            .with_hint("use at least one ED interval, e.g. the paper's k_tb=1, k_ed=2"),
        );
        buildable = false;
    }
    if !(spec.checking_pct > 0.0 && spec.checking_pct <= 50.0) {
        report.push(
            Diagnostic::new(
                DiagCode::CheckingPercentRange,
                "schedule.checking_pct",
                format!(
                    "checking period {}% of the clock is outside (0, 50] — it must end \
                     before the falling edge that latches the error flag",
                    spec.checking_pct
                ),
            )
            .with_hint("the paper evaluates c in 10..40%"),
        );
        buildable = false;
    }
    if period <= Picos::ZERO {
        report.push(Diagnostic::new(
            DiagCode::NonPositivePeriod,
            "constraint.period",
            format!("clock period {period} is not positive"),
        ));
        buildable = false;
    }
    if !buildable {
        return None;
    }

    let schedule = match CheckingPeriod::new(period, spec.checking_pct, spec.k_tb, spec.k_ed) {
        Ok(s) => s,
        Err(e) => {
            // The individual checks above cover every constructor error;
            // this arm guards against future CheckingPeriod invariants.
            report.push(Diagnostic::new(
                DiagCode::CheckingPercentRange,
                "schedule",
                format!("schedule rejected: {e}"),
            ));
            return None;
        }
    };

    if schedule.usable_checking() < schedule.checking() {
        let lost = schedule.checking() - schedule.usable_checking();
        report.push(
            Diagnostic::new(
                DiagCode::CheckingNotDivisible,
                "schedule",
                format!(
                    "checking period {} is not divisible by k = {}; quantisation \
                     shrinks the usable window to {} (losing {})",
                    schedule.checking(),
                    schedule.k(),
                    schedule.usable_checking(),
                    lost
                ),
            )
            .with_hint("pick a period or c% whose product is a multiple of k"),
        );
    }

    if spec.relay_increment == 0 || spec.relay_increment > spec.k() {
        report.push(
            Diagnostic::new(
                DiagCode::RelayIncrementRange,
                "schedule.relay_increment",
                format!(
                    "relay increment {} is outside 1..={} — a relayed error must \
                     advance the downstream select by at least one interval and the \
                     delayed clock cannot reach past the checking period",
                    spec.relay_increment,
                    spec.k()
                ),
            )
            .with_hint("the paper's relay rule uses increment 1"),
        );
    } else if spec.k_tb > 0 && spec.relay_increment > spec.k_tb {
        report.push(
            Diagnostic::new(
                DiagCode::RelayIncrementSkipsTb,
                "schedule.relay_increment",
                format!(
                    "relay increment {} exceeds k_tb = {}: a single relayed hop \
                     lands straight in an ED interval, defeating deferred flagging",
                    spec.relay_increment, spec.k_tb
                ),
            )
            .with_hint("use increment <= k_tb, or switch to immediate flagging (k_tb = 0)"),
        );
    }

    Some(schedule)
}

/// Rounds `raw` up to the nearest period whose checking window divides
/// evenly into the schedule's `k` intervals, so a config built from a
/// measured critical-path delay does not trip the `TBR004` quantisation
/// warning. Falls back to `raw` if no clean period exists within 1000
/// ps (or the spec itself is unbuildable).
pub fn snap_period(raw: Picos, spec: &ScheduleSpec) -> Picos {
    let mut period = raw;
    for _ in 0..=1000 {
        if let Ok(s) = CheckingPeriod::new(period, spec.checking_pct, spec.k_tb, spec.k_ed) {
            if s.usable_checking() == s.checking() {
                return period;
            }
        }
        period += Picos(1);
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    fn run(spec: ScheduleSpec, period: i64) -> (Option<CheckingPeriod>, LintReport) {
        let mut report = LintReport::new("t");
        let s = check_schedule(&spec, Picos(period), &mut report);
        (s, report)
    }

    #[test]
    fn paper_configurations_are_clean() {
        for spec in [ScheduleSpec::deferred(12.0), ScheduleSpec::immediate(12.0)] {
            let (s, report) = run(spec, 1000);
            assert!(s.is_some());
            assert_eq!(report.count(Severity::Error), 0, "{}", report.render());
            assert_eq!(report.count(Severity::Warn), 0, "{}", report.render());
        }
    }

    #[test]
    fn empty_schedule_is_tbr001() {
        let spec = ScheduleSpec {
            checking_pct: 10.0,
            k_tb: 0,
            k_ed: 0,
            relay_increment: 1,
        };
        let (s, report) = run(spec, 1000);
        assert!(s.is_none());
        assert_eq!(report.with_code(DiagCode::EmptySchedule).len(), 1);
    }

    #[test]
    fn bad_percent_and_period_both_reported() {
        let spec = ScheduleSpec {
            checking_pct: 60.0,
            k_tb: 1,
            k_ed: 2,
            relay_increment: 1,
        };
        let (s, report) = run(spec, 0);
        assert!(s.is_none());
        assert_eq!(report.with_code(DiagCode::CheckingPercentRange).len(), 1);
        assert_eq!(report.with_code(DiagCode::NonPositivePeriod).len(), 1);
    }

    #[test]
    fn quantisation_is_tbr004_warning() {
        // 12% of 1005ps = 120.6 -> 120ps checking (hmm, scale rounds);
        // use 10% of 1001 = 100 (k=3 -> interval 33, usable 99 < 100).
        let (s, report) = run(ScheduleSpec::deferred(10.0), 1001);
        let s = s.expect("buildable");
        assert!(s.usable_checking() < s.checking());
        let diags = report.with_code(DiagCode::CheckingNotDivisible);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn snap_period_removes_quantisation() {
        let spec = ScheduleSpec::deferred(10.0);
        let snapped = snap_period(Picos(1001), &spec);
        assert!(snapped >= Picos(1001));
        let (s, report) = run(spec, snapped.as_ps());
        assert!(s.is_some());
        assert!(report.with_code(DiagCode::CheckingNotDivisible).is_empty());
        // An unbuildable spec falls back to the raw period.
        let bad = ScheduleSpec {
            checking_pct: 60.0,
            k_tb: 1,
            k_ed: 2,
            relay_increment: 1,
        };
        assert_eq!(snap_period(Picos(1001), &bad), Picos(1001));
    }

    #[test]
    fn relay_increment_bounds_are_tbr005() {
        for inc in [0u8, 4] {
            let spec = ScheduleSpec {
                checking_pct: 12.0,
                k_tb: 1,
                k_ed: 2,
                relay_increment: inc,
            };
            let (s, report) = run(spec, 1000);
            assert!(s.is_some(), "schedule itself is fine");
            assert_eq!(
                report.with_code(DiagCode::RelayIncrementRange).len(),
                1,
                "increment {inc}"
            );
        }
    }

    #[test]
    fn increment_skipping_tb_is_tbr006() {
        let spec = ScheduleSpec {
            checking_pct: 12.0,
            k_tb: 1,
            k_ed: 2,
            relay_increment: 2,
        };
        let (_, report) = run(spec, 1000);
        let diags = report.with_code(DiagCode::RelayIncrementSkipsTb);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        // Immediate flagging has no TB intervals to skip: no warning.
        let (_, report) = run(ScheduleSpec::immediate(12.0), 1000);
        assert!(report.with_code(DiagCode::RelayIncrementSkipsTb).is_empty());
    }
}
