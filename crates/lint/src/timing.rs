//! Timing design rules (`TBR010`–`TBR031`): short-path safety, relay
//! coverage and settle time, consolidation latency.
//!
//! These checks only run on structurally clean netlists with a
//! buildable schedule; they reuse the real analyses — `timber-sta`'s
//! hold padding plan and `timber`'s relay/consolidation models — so a
//! lint verdict and a planned integration can never disagree.

use std::collections::HashSet;

use timber::{CheckingPeriod, ConsolidationTree, RelayEstimate};
use timber_netlist::{fanin_cone, FlopId, Netlist};
use timber_sta::{classify_flops, HoldAnalysis, PathDistribution, TimingAnalysis};

use crate::config::{LintConfig, PaddingPolicy, ReplacementPlan};
use crate::diagnostic::{DiagCode, Diagnostic, LintReport};

/// How many per-endpoint `TBR010`/`TBR020` diagnostics are listed
/// individually before the remainder is folded into one summary entry.
pub const ENDPOINT_DIAG_CAP: usize = 16;

/// Runs every timing check, appending findings to `report`.
///
/// The caller guarantees the netlist is acyclic (structure checks
/// passed), so the panicking analysis entry points would be safe — the
/// `try_` forms are used anyway for defence in depth.
pub fn check_timing(
    netlist: &Netlist,
    config: &LintConfig,
    schedule: &CheckingPeriod,
    report: &mut LintReport,
) {
    let constraint = &config.constraint;
    let (sta, hold) = match (
        TimingAnalysis::try_run(netlist, constraint),
        HoldAnalysis::try_run(netlist, constraint),
    ) {
        (Ok(s), Ok(h)) => (s, h),
        _ => {
            report.push(Diagnostic::new(
                DiagCode::TimingChecksSkipped,
                "timing",
                "timing analysis failed; fix structural errors first",
            ));
            return;
        }
    };

    check_padding(netlist, config, schedule, &hold, report);

    let threshold = constraint
        .period
        .scale(1.0 - config.schedule.checking_pct / 100.0);
    let classes = classify_flops(&sta, threshold);
    let replaced = resolve_replacement(netlist, config, &sta, &classes, report);

    if replaced.is_empty() {
        report.push(
            Diagnostic::new(
                DiagCode::NothingReplaced,
                "replacement",
                "no flip-flop ends a top-c% path; the TIMBER integration is a no-op",
            )
            .with_hint("raise the checking percentage or tighten the clock period"),
        );
        return;
    }

    let replaced_set: HashSet<FlopId> = replaced.iter().copied().collect();
    check_relay_coverage(netlist, &replaced, &replaced_set, &classes, report);
    check_relay_timing(netlist, config, &replaced, &replaced_set, &classes, report);
    check_consolidation(config, schedule, replaced.len(), report);
}

/// Resolves the replacement plan to a concrete flop set, validating
/// explicit plans (`TBR023` unknown ids, `TBR021` superfluous members).
fn resolve_replacement(
    netlist: &Netlist,
    config: &LintConfig,
    sta: &TimingAnalysis<'_>,
    classes: &[timber_sta::FlopTimingClass],
    report: &mut LintReport,
) -> Vec<FlopId> {
    match &config.replacement {
        ReplacementPlan::TopC => {
            PathDistribution::replacement_set(sta, netlist, config.schedule.checking_pct)
        }
        ReplacementPlan::Explicit(flops) => {
            let mut valid = Vec::new();
            for &f in flops {
                if (f.0 as usize) >= netlist.flop_count() {
                    report.push(Diagnostic::new(
                        DiagCode::UnknownReplacedFlop,
                        format!("flop #{}", f.0),
                        format!(
                            "replacement plan names flop {} but the design has only {}",
                            f.0,
                            netlist.flop_count()
                        ),
                    ));
                    continue;
                }
                if !classes[f.0 as usize].ends_critical {
                    report.push(
                        Diagnostic::new(
                            DiagCode::SuperfluousReplacement,
                            format!("flop \"{}\"", netlist.flop(f).name()),
                            "terminates no top-c% path; replacing it buys nothing",
                        )
                        .with_hint("drop it from the plan to save relay area"),
                    );
                }
                valid.push(f);
            }
            valid
        }
    }
}

/// Short-path padding against the extended hold constraint (paper §4):
/// `TBR010` per unpadded endpoint, `TBR011` over budget, `TBR012` plan
/// summary.
fn check_padding(
    netlist: &Netlist,
    config: &LintConfig,
    schedule: &CheckingPeriod,
    hold: &HoldAnalysis,
    report: &mut LintReport,
) {
    let plan = hold.padding_plan(netlist, schedule.checking());
    if plan.is_empty() {
        return;
    }
    match config.padding {
        PaddingPolicy::None => {
            for (f, deficit) in plan.deficits.iter().take(ENDPOINT_DIAG_CAP) {
                report.push(
                    Diagnostic::new(
                        DiagCode::UnpaddedShortPath,
                        format!("flop \"{}\"", netlist.flop(*f).name()),
                        format!(
                            "min-delay path is {deficit} short of the floor {} \
                             (hold + checking period); the checking window would \
                             capture next-cycle data",
                            plan.floor
                        ),
                    )
                    .with_hint("insert delay buffers or switch padding policy to Auto"),
                );
            }
            if plan.deficits.len() > ENDPOINT_DIAG_CAP {
                report.push(Diagnostic::new(
                    DiagCode::UnpaddedShortPath,
                    "short paths",
                    format!(
                        "... and {} more endpoints below the {} floor",
                        plan.deficits.len() - ENDPOINT_DIAG_CAP,
                        plan.floor
                    ),
                ));
            }
        }
        PaddingPolicy::Budget(limit) if plan.total_padding > limit => {
            report.push(
                Diagnostic::new(
                    DiagCode::PaddingBudgetExceeded,
                    "short paths",
                    format!(
                        "padding plan needs {} total delay across {} endpoints, \
                         over the declared budget {}",
                        plan.total_padding,
                        plan.deficits.len(),
                        limit
                    ),
                )
                .with_hint("raise the budget or shrink the checking period"),
            );
        }
        PaddingPolicy::Auto | PaddingPolicy::Budget(_) => {
            report.push(Diagnostic::new(
                DiagCode::PaddingPlan,
                "short paths",
                format!(
                    "{} endpoints below the {} floor; plan inserts {} buffers \
                     ({} total delay)",
                    plan.deficits.len(),
                    plan.floor,
                    plan.buffers_needed(timber_netlist::Picos(28)),
                    plan.total_padding
                ),
            ));
        }
    }
}

/// Relay-cone coverage (`TBR020`, paper §5.1): a replaced flop fed by an
/// unreplaced flop that both starts and ends critical paths cannot learn
/// how much that predecessor just borrowed — a multi-stage error would
/// arrive unannounced.
fn check_relay_coverage(
    netlist: &Netlist,
    replaced: &[FlopId],
    replaced_set: &HashSet<FlopId>,
    classes: &[timber_sta::FlopTimingClass],
    report: &mut LintReport,
) {
    let mut emitted = 0usize;
    let mut suppressed = 0usize;
    for &f in replaced {
        for g in fanin_cone(netlist, f) {
            if replaced_set.contains(&g) || !classes[g.0 as usize].starts_and_ends() {
                continue;
            }
            if emitted < ENDPOINT_DIAG_CAP {
                report.push(
                    Diagnostic::new(
                        DiagCode::RelayCoverageGap,
                        format!("flop \"{}\"", netlist.flop(f).name()),
                        format!(
                            "fed by unreplaced borrowing flop \"{}\"; its borrow \
                             cannot be relayed downstream",
                            netlist.flop(g).name()
                        ),
                    )
                    .with_hint("add the predecessor to the replacement plan"),
                );
                emitted += 1;
            } else {
                suppressed += 1;
            }
        }
    }
    if suppressed > 0 {
        report.push(Diagnostic::new(
            DiagCode::RelayCoverageGap,
            "replacement",
            format!("... and {suppressed} more relay-coverage gaps"),
        ));
    }
}

/// Relay settle time against the half-cycle budget (`TBR022`).
fn check_relay_timing(
    netlist: &Netlist,
    config: &LintConfig,
    replaced: &[FlopId],
    replaced_set: &HashSet<FlopId>,
    classes: &[timber_sta::FlopTimingClass],
    report: &mut LintReport,
) {
    for &f in replaced {
        let sources = fanin_cone(netlist, f)
            .into_iter()
            .filter(|g| replaced_set.contains(g) && classes[g.0 as usize].starts_and_ends())
            .count();
        let estimate = RelayEstimate::new(sources);
        let slack = estimate.slack_pct(config.constraint.period);
        if slack < 0.0 {
            report.push(
                Diagnostic::new(
                    DiagCode::RelayConsolidationTiming,
                    format!("flop \"{}\"", netlist.flop(f).name()),
                    format!(
                        "relay network over {sources} sources needs {} to settle, \
                         past the half-cycle budget ({slack:.1}% slack)",
                        estimate.delay()
                    ),
                )
                .with_hint("shrink the relay cone or lower the clock frequency"),
            );
        }
    }
}

/// Error-consolidation OR-tree vs the schedule's latency budget
/// (`TBR030`, paper §4).
fn check_consolidation(
    config: &LintConfig,
    schedule: &CheckingPeriod,
    sources: usize,
    report: &mut LintReport,
) {
    let tree = ConsolidationTree::new(sources);
    if !tree.meets_budget(schedule) {
        report.push(
            Diagnostic::new(
                DiagCode::ConsolidationBudget,
                "consolidation",
                format!(
                    "OR-tree over {sources} sources settles in {:.2} cycles, over \
                     the schedule budget of {:.2} (k_ed - 1 + 0.5)",
                    tree.latency_cycles(config.constraint.period),
                    schedule.consolidation_budget_cycles()
                ),
            )
            .with_hint("add ED intervals (larger k_ed) or pipeline the OR-tree"),
        );
    }
}
