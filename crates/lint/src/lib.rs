//! # timber-lint
//!
//! Static design-rule checker for TIMBER (DATE 2010) integrations.
//!
//! An integration that silently violates the paper's side conditions —
//! a short path below the `hold + checking period` floor (§4), a
//! replaced flop whose borrowing predecessor cannot relay to it (§5.1),
//! an error-consolidation tree slower than the `k_ed − 1 + 0.5` cycle
//! budget — fails in silicon, not in simulation. This crate checks
//! those rules *statically*, before any simulation runs, and reports
//! violations as [`Diagnostic`]s with stable codes (`TBR001`…)
//! suitable for CI gating.
//!
//! The check pipeline is [`lint`]: schedule well-formedness
//! (`TBR001`–`TBR006`), netlist structure (`TBR040`–`TBR043`,
//! including *all* combinational loops with their full cycle paths),
//! then — only on clean inputs — the timing rules (`TBR010`–`TBR031`)
//! built on the same `timber-sta` and `timber` analyses a real
//! integration plan uses. The full code → invariant table is in
//! `DESIGN.md` §9; the CLI front-end is `repro lint`.
//!
//! # Example
//!
//! ```
//! use timber_lint::{lint, LintConfig, ScheduleSpec};
//! use timber_netlist::{CellLibrary, Picos};
//! use timber_sta::ClockConstraint;
//!
//! let lib = CellLibrary::standard();
//! let nl = timber_netlist::ripple_carry_adder(&lib, 8).unwrap();
//! let cfg = LintConfig::new(
//!     "deferred20",
//!     ScheduleSpec::deferred(20.0),
//!     ClockConstraint::with_period(Picos(1500)),
//! );
//! let report = lint(&nl, &cfg);
//! assert!(report.passes(true), "{}", report.render());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod diagnostic;
pub mod linter;
pub mod schedule;
pub mod structure;
pub mod timing;

pub use config::{LintConfig, PaddingPolicy, ReplacementPlan, ScheduleSpec};
pub use diagnostic::{reports_json, DiagCode, Diagnostic, LintReport, Severity};
pub use linter::lint;
pub use schedule::snap_period;

#[cfg(test)]
mod props;
