//! Property-based tests (proptest) for the variability models.

#![cfg(test)]

use proptest::prelude::*;

use timber_netlist::Picos;

use crate::model::{Aging, DelaySource, LocalJitter, TemperatureDrift, VariabilityBuilder};
use crate::sensitization::{SensitizationModel, StagePathProfile};

proptest! {
    /// Every composed environment yields positive, bounded factors.
    #[test]
    fn composite_factors_bounded(
        seed in 0u64..100,
        droop in 0.0f64..0.15,
        jitter in 0.0f64..0.03,
        cycle in 0u64..100_000,
        stage in 0usize..8,
    ) {
        let mut var = VariabilityBuilder::new(seed)
            .process(8, 0.03)
            .voltage_droop(droop.max(0.001), 500, 1000.0)
            .temperature(0.02, 1_000_000)
            .aging(0.002)
            .local_jitter(jitter)
            .build();
        let f = var.factor(cycle, stage);
        prop_assert!(f > 0.3, "factor {f} too small");
        prop_assert!(f < 2.5, "factor {f} too large");
    }

    /// Aging is monotone non-decreasing in time for any slope.
    #[test]
    fn aging_monotone(slope in 0.0f64..0.05, c1 in 0u64..1_000_000, c2 in 0u64..1_000_000) {
        let mut a = Aging::new(slope);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(a.factor(lo, 0) <= a.factor(hi, 0) + 1e-12);
    }

    /// Temperature drift never speeds the circuit up and never exceeds
    /// its amplitude.
    #[test]
    fn temperature_bounded(
        amp in 0.0f64..0.1,
        period in 1_000u64..10_000_000,
        seed in 0u64..50,
        cycle in 0u64..50_000_000,
    ) {
        let mut t = TemperatureDrift::new(amp, period, seed);
        let f = t.factor(cycle, 0);
        prop_assert!(f >= 1.0 - 1e-12);
        prop_assert!(f <= 1.0 + amp + 1e-12);
    }

    /// Local jitter is a pure function of (seed, cycle, stage).
    #[test]
    fn jitter_pure(
        sigma in 0.0f64..0.05,
        seed in 0u64..100,
        cycle in 0u64..1_000_000,
        stage in 0usize..16,
    ) {
        let mut j1 = LocalJitter::new(sigma, seed);
        let mut j2 = LocalJitter::new(sigma, seed);
        prop_assert_eq!(j1.factor(cycle, stage), j2.factor(cycle, stage));
    }

    /// Sensitized delays never exceed the critical delay and are always
    /// positive, for any valid profile.
    #[test]
    fn sensitization_bounded(
        crit in 100i64..5000,
        p_crit in 0.0f64..0.5,
        p_near in 0.0f64..0.5,
        seed in 0u64..50,
    ) {
        let mut profile = StagePathProfile::from_critical(Picos(crit));
        profile.p_critical = p_crit;
        profile.p_near = p_near.min(1.0 - p_crit);
        let mut m = SensitizationModel::new(vec![profile], seed);
        for _ in 0..200 {
            let (d, _) = m.sample(0);
            prop_assert!(d > Picos::ZERO);
            prop_assert!(d <= Picos(crit));
        }
    }
}
