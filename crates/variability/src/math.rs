//! Small sampling helpers on top of `rand`'s uniform generator.
//!
//! The approved offline dependency set contains `rand` but not
//! `rand_distr`, so the handful of distributions the variability models
//! need are implemented here directly.

use rand::Rng;

/// Draws a standard-normal sample via the Box–Muller transform.
pub fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws an exponential sample with the given rate (events per unit
/// time).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Draws a Poisson-distributed count with the given mean, by counting
/// exponential inter-arrivals (adequate for the small means used here).
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "poisson mean must be finite and non-negative"
    );
    if mean == 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u32;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn box_muller_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| box_muller(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn exponential_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn poisson_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| poisson_count(&mut rng, 3.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_validates_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = exponential(&mut rng, 0.0);
    }
}
