//! Workload-dependent path sensitization.
//!
//! A timing error needs two coincidences: dynamic variability must
//! inflate delays *and* the workload must exercise a long path on that
//! very cycle. The paper leans on the second factor — the sensitization
//! probability of a top critical path is small (order 10⁻³, citing the
//! authors' DATE 2009 logic-masking work), so the joint probability of
//! sensitizing end-to-end critical paths on *successive* cycles (a
//! multi-stage error) is negligibly small.
//!
//! [`SensitizationModel`] samples, per cycle and stage, which delay
//! class the workload exercises; the pipeline simulator then derates the
//! sampled base delay with the `model::DelaySource` environment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use timber_netlist::Picos;

/// Path-delay classes of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePathProfile {
    /// Delay of the stage's critical path.
    pub critical: Picos,
    /// Delay of the near-critical path population.
    pub near_critical: Picos,
    /// Median delay of ordinary sensitized paths.
    pub typical: Picos,
    /// Per-cycle probability the critical path is sensitized
    /// (paper-consistent default: 1e-3).
    pub p_critical: f64,
    /// Per-cycle probability a near-critical path is sensitized.
    pub p_near: f64,
}

impl StagePathProfile {
    /// A profile derived from the stage's critical delay: near-critical
    /// paths at 95% and typical paths at 65% of critical, with the
    /// paper-consistent sensitization probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `critical` is not positive.
    pub fn from_critical(critical: Picos) -> StagePathProfile {
        assert!(critical > Picos::ZERO, "critical delay must be positive");
        StagePathProfile {
            critical,
            near_critical: critical.scale(0.95),
            typical: critical.scale(0.65),
            p_critical: 1e-3,
            p_near: 1e-2,
        }
    }

    /// Validates the profile's probabilities and delay ordering.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]`, their sum exceeds
    /// 1, or delays are not ordered `typical ≤ near_critical ≤
    /// critical`.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.p_critical));
        assert!((0.0..=1.0).contains(&self.p_near));
        assert!(self.p_critical + self.p_near <= 1.0);
        assert!(self.typical <= self.near_critical);
        assert!(self.near_critical <= self.critical);
    }
}

/// Which class of path a cycle sensitized (exposed for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitizedClass {
    /// The stage's critical path.
    Critical,
    /// A near-critical path.
    NearCritical,
    /// An ordinary path.
    Typical,
}

/// Per-stage sampler of the base (pre-derating) combinational delay.
#[derive(Debug, Clone)]
pub struct StageDelayModel {
    profile: StagePathProfile,
}

impl StageDelayModel {
    /// Creates a sampler for a validated profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`StagePathProfile::validate`].
    pub fn new(profile: StagePathProfile) -> StageDelayModel {
        profile.validate();
        StageDelayModel { profile }
    }

    /// The profile driving the sampler.
    pub fn profile(&self) -> &StagePathProfile {
        &self.profile
    }

    /// Samples a cycle's base delay and its class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Picos, SensitizedClass) {
        let u: f64 = rng.gen();
        if u < self.profile.p_critical {
            (self.profile.critical, SensitizedClass::Critical)
        } else if u < self.profile.p_critical + self.profile.p_near {
            // Near-critical paths span [near_critical, critical).
            let span = (self.profile.critical - self.profile.near_critical).as_ps();
            let extra = if span > 0 { rng.gen_range(0..span) } else { 0 };
            (
                self.profile.near_critical + Picos(extra),
                SensitizedClass::NearCritical,
            )
        } else {
            // Typical paths span [0.5*typical, near_critical).
            let lo = self.profile.typical.as_ps() / 2;
            let hi = self.profile.near_critical.as_ps().max(lo + 1);
            (Picos(rng.gen_range(lo..hi)), SensitizedClass::Typical)
        }
    }
}

/// Sensitization model for a whole pipeline: one [`StageDelayModel`] per
/// stage and a seeded RNG.
#[derive(Debug)]
pub struct SensitizationModel {
    stages: Vec<StageDelayModel>,
    rng: StdRng,
}

impl SensitizationModel {
    /// Creates a model from per-stage profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or any profile is invalid.
    pub fn new(profiles: Vec<StagePathProfile>, seed: u64) -> SensitizationModel {
        assert!(!profiles.is_empty(), "need at least one stage profile");
        SensitizationModel {
            stages: profiles.into_iter().map(StageDelayModel::new).collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform pipeline: every stage shares the same critical delay.
    pub fn uniform(stages: usize, critical: Picos, seed: u64) -> SensitizationModel {
        SensitizationModel::new(
            vec![StagePathProfile::from_critical(critical); stages],
            seed,
        )
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Per-stage model accessor.
    pub fn stage(&self, stage: usize) -> &StageDelayModel {
        &self.stages[stage]
    }

    /// Samples the base delay sensitized at `stage` this cycle.
    pub fn sample(&mut self, stage: usize) -> (Picos, SensitizedClass) {
        self.stages[stage].sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_critical_is_valid() {
        let p = StagePathProfile::from_critical(Picos(1000));
        p.validate();
        assert_eq!(p.near_critical, Picos(950));
        assert_eq!(p.typical, Picos(650));
    }

    #[test]
    fn critical_sensitization_rate_matches_probability() {
        let mut m = SensitizationModel::uniform(1, Picos(1000), 7);
        let n = 200_000;
        let crit = (0..n)
            .filter(|_| matches!(m.sample(0).1, SensitizedClass::Critical))
            .count();
        let rate = crit as f64 / n as f64;
        assert!(
            (rate - 1e-3).abs() < 4e-4,
            "critical rate {rate} should be near 1e-3"
        );
    }

    #[test]
    fn sampled_delays_never_exceed_critical() {
        let mut m = SensitizationModel::uniform(2, Picos(800), 9);
        for _ in 0..10_000 {
            for s in 0..2 {
                let (d, _) = m.sample(s);
                assert!(d <= Picos(800));
                assert!(d > Picos::ZERO);
            }
        }
    }

    #[test]
    fn class_delay_ranges_are_disjointish() {
        let mut m = SensitizationModel::uniform(1, Picos(1000), 3);
        for _ in 0..20_000 {
            let (d, class) = m.sample(0);
            match class {
                SensitizedClass::Critical => assert_eq!(d, Picos(1000)),
                SensitizedClass::NearCritical => {
                    assert!(d >= Picos(950) && d < Picos(1000))
                }
                SensitizedClass::Typical => assert!(d < Picos(950)),
            }
        }
    }

    #[test]
    fn model_is_seed_deterministic() {
        let mut a = SensitizationModel::uniform(3, Picos(500), 42);
        let mut b = SensitizationModel::uniform(3, Picos(500), 42);
        for _ in 0..1000 {
            for s in 0..3 {
                assert_eq!(a.sample(s).0, b.sample(s).0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "critical delay must be positive")]
    fn profile_rejects_zero_critical() {
        let _ = StagePathProfile::from_critical(Picos(0));
    }

    #[test]
    #[should_panic(expected = "need at least one stage profile")]
    fn model_rejects_empty_profiles() {
        let _ = SensitizationModel::new(vec![], 1);
    }
}
