//! Delay-derating sources and their composition.
//!
//! Each source implements [`DelaySource`]: a multiplicative factor on a
//! pipeline stage's combinational delay at a given clock cycle. Factors
//! combine multiplicatively in [`CompositeVariability`].
//!
//! The taxonomy follows the paper's §1/§3 discussion:
//!
//! * **static** — [`ProcessVariation`]: fixed per stage, workload
//!   independent (handled at design/test time; included for baselines);
//! * **slow-changing global dynamic** — [`VoltageDroop`],
//!   [`TemperatureDrift`], [`Aging`]: affect many consecutive cycles and
//!   can therefore cause *multi-stage* timing errors;
//! * **fast-changing local dynamic** — [`LocalJitter`]: uncorrelated
//!   across cycles and stages, causing mostly *single-stage* errors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::math::box_muller;

/// A time- and stage-dependent multiplicative delay derating.
///
/// A factor of 1.0 is nominal; 1.10 means combinational delays are 10%
/// slower on that cycle at that stage.
pub trait DelaySource {
    /// Derating factor at `cycle` for pipeline `stage`.
    fn factor(&mut self, cycle: u64, stage: usize) -> f64;

    /// Short, human-readable source name (for reports).
    fn name(&self) -> &str;
}

/// Static process variation: a per-stage factor drawn once at
/// construction from N(1, sigma²), constant for the run.
#[derive(Debug, Clone)]
pub struct ProcessVariation {
    factors: Vec<f64>,
}

impl ProcessVariation {
    /// Draws per-stage factors for `stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(stages: usize, sigma: f64, seed: u64) -> ProcessVariation {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let factors = (0..stages)
            .map(|_| (1.0 + sigma * box_muller(&mut rng)).max(0.5))
            .collect();
        ProcessVariation { factors }
    }
}

impl DelaySource for ProcessVariation {
    fn factor(&mut self, _cycle: u64, stage: usize) -> f64 {
        self.factors[stage % self.factors.len()]
    }

    fn name(&self) -> &str {
        "process"
    }
}

/// Global supply-voltage droop: a resonant sinusoidal component plus
/// Poisson-arriving droop events with exponential recovery.
///
/// Voltage droop is the dominant *slow-changing global* source in the
/// paper's discussion: when a droop event hits, several consecutive
/// cycles slow down together, which is what makes multi-stage timing
/// errors possible at all.
#[derive(Debug, Clone)]
pub struct VoltageDroop {
    /// Peak derating of a droop event (e.g. 0.08 = 8% slower).
    depth: f64,
    /// Period of the resonant component, in cycles.
    resonance_cycles: u64,
    /// Mean cycles between droop events.
    mean_interval: f64,
    /// Exponential recovery time constant, in cycles.
    recovery_tau: f64,
    rng: StdRng,
    next_event: u64,
    /// Cycle at which the most recent droop event started.
    last_event: Option<u64>,
    last_cycle_seen: u64,
    /// Cycle the cached factor was computed for (`u64::MAX` = none).
    /// The factor is stage-independent, and the simulator queries all
    /// stages of a cycle back-to-back, so this avoids recomputing the
    /// ripple sinusoid and recovery exponential per stage.
    cached_cycle: u64,
    cached_factor: f64,
}

impl VoltageDroop {
    /// Creates a droop model.
    ///
    /// * `depth` — peak derating of an event (0.08 = up to 8% slower);
    /// * `resonance_cycles` — period of the small always-on resonant
    ///   ripple (its amplitude is `depth / 4`);
    /// * `mean_interval` — mean cycles between droop events.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is negative, `resonance_cycles` is zero, or
    /// `mean_interval` is not positive.
    pub fn new(depth: f64, resonance_cycles: u64, mean_interval: f64, seed: u64) -> VoltageDroop {
        assert!(depth >= 0.0, "droop depth must be non-negative");
        assert!(resonance_cycles > 0, "resonance period must be positive");
        assert!(mean_interval > 0.0, "mean interval must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let first = crate::math::exponential(&mut rng, 1.0 / mean_interval).ceil() as u64;
        VoltageDroop {
            depth,
            resonance_cycles,
            mean_interval,
            recovery_tau: (mean_interval / 20.0).max(4.0),
            rng,
            next_event: first,
            last_event: None,
            last_cycle_seen: 0,
            cached_cycle: u64::MAX,
            cached_factor: 1.0,
        }
    }
}

impl DelaySource for VoltageDroop {
    fn factor(&mut self, cycle: u64, _stage: usize) -> f64 {
        if cycle == self.cached_cycle {
            return self.cached_factor;
        }
        // Advance event schedule up to `cycle`. Queries must be
        // monotone in cycle (the pipeline simulator guarantees this).
        debug_assert!(
            cycle >= self.last_cycle_seen,
            "VoltageDroop must be queried with non-decreasing cycles"
        );
        self.last_cycle_seen = cycle;
        while cycle >= self.next_event {
            self.last_event = Some(self.next_event);
            let gap = crate::math::exponential(&mut self.rng, 1.0 / self.mean_interval);
            self.next_event += gap.ceil().max(1.0) as u64;
        }
        let ripple = (self.depth / 4.0)
            * (std::f64::consts::TAU * (cycle % self.resonance_cycles) as f64
                / self.resonance_cycles as f64)
                .sin()
                .max(0.0);
        let event = match self.last_event {
            Some(start) => {
                let age = (cycle - start) as f64;
                self.depth * (-age / self.recovery_tau).exp()
            }
            None => 0.0,
        };
        self.cached_cycle = cycle;
        self.cached_factor = 1.0 + ripple + event;
        self.cached_factor
    }

    fn name(&self) -> &str {
        "voltage-droop"
    }
}

/// Slow global temperature drift: a bounded sinusoid over a very long
/// period (thermal time constants are ~ms, i.e. millions of cycles).
#[derive(Debug, Clone)]
pub struct TemperatureDrift {
    amplitude: f64,
    period_cycles: u64,
    phase: f64,
    /// Cycle the cached factor was computed for (`u64::MAX` = none).
    /// Drift is a pure, stage-independent function of the cycle, so
    /// per-stage queries within a cycle reuse one sinusoid evaluation.
    cached_cycle: u64,
    cached_factor: f64,
}

impl TemperatureDrift {
    /// Creates a drift with the given amplitude (e.g. 0.03 = ±3%) and
    /// period in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or `period_cycles` is zero.
    pub fn new(amplitude: f64, period_cycles: u64, seed: u64) -> TemperatureDrift {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        assert!(period_cycles > 0, "period must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        TemperatureDrift {
            amplitude,
            period_cycles,
            phase: rng.gen_range(0.0..std::f64::consts::TAU),
            cached_cycle: u64::MAX,
            cached_factor: 1.0,
        }
    }
}

impl DelaySource for TemperatureDrift {
    fn factor(&mut self, cycle: u64, _stage: usize) -> f64 {
        if cycle == self.cached_cycle {
            return self.cached_factor;
        }
        let theta = std::f64::consts::TAU * (cycle % self.period_cycles) as f64
            / self.period_cycles as f64
            + self.phase;
        self.cached_cycle = cycle;
        self.cached_factor = 1.0 + self.amplitude * theta.sin().max(0.0);
        self.cached_factor
    }

    fn name(&self) -> &str {
        "temperature"
    }
}

/// Aging (NBTI-style) wearout: delay grows logarithmically with time.
#[derive(Debug, Clone)]
pub struct Aging {
    /// Derating added per decade of cycles.
    per_decade: f64,
}

impl Aging {
    /// Creates an aging model adding `per_decade` derating per factor-10
    /// increase in elapsed cycles.
    ///
    /// # Panics
    ///
    /// Panics if `per_decade` is negative.
    pub fn new(per_decade: f64) -> Aging {
        assert!(per_decade >= 0.0, "per-decade slope must be non-negative");
        Aging { per_decade }
    }
}

impl DelaySource for Aging {
    fn factor(&mut self, cycle: u64, _stage: usize) -> f64 {
        1.0 + self.per_decade * (1.0 + cycle as f64).log10()
    }

    fn name(&self) -> &str {
        "aging"
    }
}

/// Fast local noise: iid Gaussian derating per (cycle, stage), clipped
/// at ±4 sigma. Models crosstalk, local IR noise and PLL jitter.
#[derive(Debug, Clone)]
pub struct LocalJitter {
    sigma: f64,
    seed: u64,
    /// Counter-mode key of the cached Box–Muller pair
    /// (`u64::MAX` = none).
    cached_key: u64,
    /// One Box–Muller transform yields two independent normals; stages
    /// `2k` and `2k+1` of a cycle share a transform, so consecutive
    /// per-stage queries pay the `ln`/`sqrt`/`sin_cos` only once per
    /// pair. The two draws of a pair are exactly independent, so the
    /// per-coordinate statistics are unchanged.
    cached_pair: (f64, f64),
}

impl LocalJitter {
    /// Creates a jitter source with the given sigma (e.g. 0.01 = 1%).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(sigma: f64, seed: u64) -> LocalJitter {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LocalJitter {
            sigma,
            seed,
            cached_key: u64::MAX,
            cached_pair: (0.0, 0.0),
        }
    }

    /// One SplitMix64 step (counter-mode uniform source).
    #[inline]
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The Box–Muller pair for a (cycle, stage-pair) key.
    #[inline]
    fn pair_for(&mut self, key: u64) -> (f64, f64) {
        if key == self.cached_key {
            return self.cached_pair;
        }
        let mut state = key;
        // Uniforms in (0, 1]: offset by one ulp step so ln never sees 0.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        let u1 = (Self::splitmix(&mut state) >> 11) as f64 * SCALE + SCALE;
        let u2 = (Self::splitmix(&mut state) >> 11) as f64 * SCALE;
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        self.cached_key = key;
        self.cached_pair = (r * cos, r * sin);
        self.cached_pair
    }
}

impl DelaySource for LocalJitter {
    fn factor(&mut self, cycle: u64, stage: usize) -> f64 {
        // Counter-mode: hash (cycle, stage pair) so the factor is a
        // pure function of the coordinate regardless of query order.
        let pair = (stage / 2) as u64;
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(pair.wrapping_mul(0x94D0_49BB_1331_11EB));
        let (z0, z1) = self.pair_for(key);
        let z = if stage.is_multiple_of(2) { z0 } else { z1 };
        let z = z.clamp(-4.0, 4.0);
        (1.0 + self.sigma * z).max(0.5)
    }

    fn name(&self) -> &str {
        "local-jitter"
    }
}

/// Product of several [`DelaySource`]s.
pub struct CompositeVariability {
    sources: Vec<Box<dyn DelaySource + Send>>,
}

impl CompositeVariability {
    /// Creates a composite from boxed sources.
    pub fn new(sources: Vec<Box<dyn DelaySource + Send>>) -> CompositeVariability {
        CompositeVariability { sources }
    }

    /// A composite with no sources (always factor 1.0).
    pub fn nominal() -> CompositeVariability {
        CompositeVariability {
            sources: Vec::new(),
        }
    }

    /// Names of the composed sources.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.name()).collect()
    }
}

impl std::fmt::Debug for CompositeVariability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeVariability")
            .field("sources", &self.source_names())
            .finish()
    }
}

impl DelaySource for CompositeVariability {
    fn factor(&mut self, cycle: u64, stage: usize) -> f64 {
        self.sources
            .iter_mut()
            .map(|s| s.factor(cycle, stage))
            .product()
    }

    fn name(&self) -> &str {
        "composite"
    }
}

/// Builder for [`CompositeVariability`].
///
/// Every added source derives its seed from the builder seed, so one
/// seed reproduces the whole environment.
#[derive(Debug)]
pub struct VariabilityBuilder {
    seed: u64,
    next_salt: u64,
    sources: Vec<Box<dyn DelaySource + Send>>,
}

impl std::fmt::Debug for Box<dyn DelaySource + Send> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DelaySource({})", self.name())
    }
}

impl VariabilityBuilder {
    /// Starts a builder with a master seed.
    pub fn new(seed: u64) -> VariabilityBuilder {
        VariabilityBuilder {
            seed,
            next_salt: 1,
            sources: Vec::new(),
        }
    }

    fn salt(&mut self) -> u64 {
        let s = self
            .seed
            .wrapping_add(self.next_salt.wrapping_mul(0xA24B_AED4_963E_E407));
        self.next_salt += 1;
        s
    }

    /// Adds static process variation over `stages` stages.
    pub fn process(mut self, stages: usize, sigma: f64) -> VariabilityBuilder {
        let salt = self.salt();
        self.sources
            .push(Box::new(ProcessVariation::new(stages, sigma, salt)));
        self
    }

    /// Adds voltage droop (see [`VoltageDroop::new`]).
    pub fn voltage_droop(
        mut self,
        depth: f64,
        resonance_cycles: u64,
        mean_interval: f64,
    ) -> VariabilityBuilder {
        let salt = self.salt();
        self.sources.push(Box::new(VoltageDroop::new(
            depth,
            resonance_cycles,
            mean_interval,
            salt,
        )));
        self
    }

    /// Adds temperature drift.
    pub fn temperature(mut self, amplitude: f64, period_cycles: u64) -> VariabilityBuilder {
        let salt = self.salt();
        self.sources.push(Box::new(TemperatureDrift::new(
            amplitude,
            period_cycles,
            salt,
        )));
        self
    }

    /// Adds aging wearout.
    pub fn aging(mut self, per_decade: f64) -> VariabilityBuilder {
        self.sources.push(Box::new(Aging::new(per_decade)));
        self
    }

    /// Adds fast local jitter.
    pub fn local_jitter(mut self, sigma: f64) -> VariabilityBuilder {
        let salt = self.salt();
        self.sources.push(Box::new(LocalJitter::new(sigma, salt)));
        self
    }

    /// Finishes the composite.
    pub fn build(self) -> CompositeVariability {
        CompositeVariability::new(self.sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_variation_is_static() {
        let mut p = ProcessVariation::new(4, 0.05, 1);
        let f = p.factor(0, 2);
        assert_eq!(p.factor(100, 2), f);
        assert_eq!(p.factor(1_000_000, 2), f);
    }

    #[test]
    fn process_variation_zero_sigma_is_nominal() {
        let mut p = ProcessVariation::new(4, 0.0, 1);
        for s in 0..4 {
            assert!((p.factor(0, s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn droop_events_decay() {
        // Events must be sparse relative to the 30-cycle observation
        // window, otherwise a fresh event can land between the peak and
        // the "later" sample and mask the recovery (with a 50-cycle
        // mean interval that happens for most seeds).
        let mut d = VoltageDroop::new(0.10, 1_000_000, 10_000.0, 3);
        // Find a cycle right at an event.
        let mut peak_cycle = None;
        let mut prev = 1.0;
        for c in 0..100_000u64 {
            let f = d.factor(c, 0);
            if f > prev && f > 1.05 {
                peak_cycle = Some(c);
                break;
            }
            prev = f;
        }
        let c = peak_cycle.expect("a droop event should occur in 100k cycles");
        let mut d2 = VoltageDroop::new(0.10, 1_000_000, 10_000.0, 3);
        let at_peak = d2.factor(c, 0);
        let later = d2.factor(c + 30, 0);
        assert!(at_peak > later, "droop must recover: {at_peak} -> {later}");
    }

    #[test]
    fn droop_factor_never_speeds_up() {
        let mut d = VoltageDroop::new(0.08, 500, 200.0, 9);
        for c in 0..5_000u64 {
            assert!(d.factor(c, 0) >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn temperature_is_bounded_and_slow() {
        let mut t = TemperatureDrift::new(0.03, 1_000_000, 5);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for c in (0..10_000_000u64).step_by(100_000) {
            let f = t.factor(c, 0);
            min = min.min(f);
            max = max.max(f);
        }
        assert!(min >= 1.0 - 1e-12);
        assert!(max <= 1.03 + 1e-12);
        // Adjacent cycles barely differ (slow drift).
        let a = t.factor(1_000, 0);
        let b = t.factor(1_001, 0);
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn aging_is_monotone() {
        let mut a = Aging::new(0.01);
        let early = a.factor(10, 0);
        let late = a.factor(1_000_000, 0);
        assert!(late > early);
        assert!((a.factor(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_jitter_is_deterministic_per_coordinate() {
        let mut j = LocalJitter::new(0.02, 11);
        let f1 = j.factor(123, 4);
        let f2 = j.factor(123, 4);
        assert_eq!(f1, f2);
        // Different coordinates give different factors (overwhelmingly).
        assert_ne!(j.factor(123, 4), j.factor(124, 4));
    }

    #[test]
    fn composite_multiplies_sources() {
        struct Fixed(f64);
        impl DelaySource for Fixed {
            fn factor(&mut self, _c: u64, _s: usize) -> f64 {
                self.0
            }
            fn name(&self) -> &str {
                "fixed"
            }
        }
        let mut c = CompositeVariability::new(vec![Box::new(Fixed(1.1)), Box::new(Fixed(1.2))]);
        assert!((c.factor(0, 0) - 1.32).abs() < 1e-12);
        assert_eq!(c.source_names(), vec!["fixed", "fixed"]);
    }

    #[test]
    fn nominal_composite_is_identity() {
        let mut c = CompositeVariability::nominal();
        assert_eq!(c.factor(42, 7), 1.0);
    }

    #[test]
    fn builder_produces_reproducible_environment() {
        let make = || {
            VariabilityBuilder::new(99)
                .process(4, 0.03)
                .voltage_droop(0.08, 500, 300.0)
                .local_jitter(0.01)
                .build()
        };
        let mut a = make();
        let mut b = make();
        for c in 0..200u64 {
            for s in 0..4 {
                assert_eq!(a.factor(c, s), b.factor(c, s));
            }
        }
    }
}
