//! # timber-variability
//!
//! Static and dynamic variability models for the TIMBER (DATE 2010)
//! reproduction.
//!
//! TIMBER targets *dynamic* variability — voltage droop, temperature
//! drift, aging, local noise — whose effects change with time and
//! workload and therefore cannot be margined away at manufacturing test.
//! This crate models each source as a multiplicative, per-cycle delay
//! derating factor and provides the workload (path-sensitization) model
//! that determines which path delay a pipeline stage exercises on each
//! cycle.
//!
//! All models are seeded and deterministic: the same configuration
//! always produces the same factor sequence, so every experiment in the
//! repository is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use timber_variability::{DelaySource, VariabilityBuilder};
//!
//! let mut var = VariabilityBuilder::new(42)
//!     .voltage_droop(0.08, 500, 2000.0)
//!     .local_jitter(0.01)
//!     .build();
//! let f = var.factor(0, 3);
//! assert!(f > 0.5 && f < 2.0);
//! ```

#![warn(missing_docs)]

pub mod math;
pub mod model;
pub mod sensitization;

pub use math::{box_muller, exponential, poisson_count};
pub use model::{
    Aging, CompositeVariability, DelaySource, LocalJitter, ProcessVariation, TemperatureDrift,
    VariabilityBuilder, VoltageDroop,
};
pub use sensitization::{SensitizationModel, StageDelayModel, StagePathProfile};

#[cfg(test)]
mod props;
