//! Waveform capture and ASCII rendering.
//!
//! The `repro fig5` / `repro fig7` binaries print these renderings as
//! the reproduction of the paper's SPICE waveform figures.

use std::collections::HashMap;

use timber_netlist::Picos;

use crate::signal::{Logic, SigId};

/// The transition history of one signal.
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    samples: Vec<(Picos, Logic)>,
}

impl Waveform {
    /// Recorded transitions as `(time, new value)` pairs, in time order.
    pub fn samples(&self) -> &[(Picos, Logic)] {
        &self.samples
    }

    /// Value at a time (the last transition at or before `t`; `X` before
    /// the first transition).
    pub fn value_at(&self, t: Picos) -> Logic {
        match self.samples.partition_point(|&(st, _)| st <= t) {
            0 => Logic::X,
            idx => self.samples[idx - 1].1,
        }
    }

    /// True when the signal has settled to `expected` by time `t`: its
    /// value at `t` (the last transition at or before `t`) equals
    /// `expected`. This is the capture predicate a sequential element
    /// clocked at `t` evaluates, and what the conformance oracle's
    /// event-driven model samples at each scheme's capture instants.
    pub fn settles_by(&self, t: Picos, expected: Logic) -> bool {
        self.value_at(t) == expected
    }

    /// The last recorded transition, if any transition was recorded.
    pub fn last_transition(&self) -> Option<(Picos, Logic)> {
        self.samples.last().copied()
    }

    /// Times at which the signal rose (changed to 1).
    pub fn rising_edges(&self) -> Vec<Picos> {
        self.samples
            .iter()
            .filter(|(_, v)| *v == Logic::One)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Number of transitions in a half-open window `[from, to)` — used
    /// to count glitches in the checking period.
    pub fn transitions_in(&self, from: Picos, to: Picos) -> usize {
        self.samples
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .count()
    }
}

/// Waveforms of all watched signals in a simulation.
#[derive(Debug, Clone, Default)]
pub struct WaveformSet {
    traces: HashMap<SigId, Waveform>,
}

impl WaveformSet {
    pub(crate) fn new(watched: Vec<SigId>) -> WaveformSet {
        WaveformSet {
            traces: watched
                .into_iter()
                .map(|s| (s, Waveform::default()))
                .collect(),
        }
    }

    pub(crate) fn record(&mut self, sig: SigId, t: Picos, v: Logic) {
        if let Some(w) = self.traces.get_mut(&sig) {
            w.samples.push((t, v));
        }
    }

    /// The trace of a watched signal, if it was watched.
    pub fn trace(&self, sig: SigId) -> Option<&Waveform> {
        self.traces.get(&sig)
    }
}

/// Renders labelled waveforms as ASCII rows over `[t0, t1)` with one
/// character per `step` of time: `‾` high, `_` low, `x` unknown, `|` on
/// the sample after a transition.
///
/// # Panics
///
/// Panics if `step` is not positive or `t1 <= t0`.
pub fn render_waves(
    set: &WaveformSet,
    rows: &[(&str, SigId)],
    t0: Picos,
    t1: Picos,
    step: Picos,
) -> String {
    assert!(step > Picos::ZERO, "step must be positive");
    assert!(t1 > t0, "window must be non-empty");
    let label_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    // Time ruler.
    out.push_str(&format!("{:label_w$} ", "t/ps"));
    let cols = ((t1 - t0).as_ps() / step.as_ps()) as usize;
    let mut c = 0;
    while c < cols {
        let t = t0 + step * (c as i64);
        let mark = format!("{}", t.as_ps());
        if c % 10 == 0 && c + mark.len() <= cols {
            out.push_str(&mark);
            c += mark.len();
        } else {
            out.push(' ');
            c += 1;
        }
    }
    out.push('\n');
    for &(name, sig) in rows {
        out.push_str(&format!("{name:label_w$} "));
        let trace = set.trace(sig);
        let mut prev: Option<Logic> = None;
        for col in 0..cols {
            let t = t0 + step * (col as i64);
            let v = trace.map(|w| w.value_at(t)).unwrap_or(Logic::X);
            let ch = match (prev, v) {
                (Some(p), _) if p != v => '|',
                (_, Logic::One) => '\u{203E}', // overline
                (_, Logic::Zero) => '_',
                (_, Logic::X) => 'x',
            };
            out.push(ch);
            prev = Some(v);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(samples: &[(i64, Logic)]) -> Waveform {
        Waveform {
            samples: samples.iter().map(|&(t, v)| (Picos(t), v)).collect(),
        }
    }

    #[test]
    fn value_at_returns_latest_transition() {
        let w = wave(&[(10, Logic::One), (20, Logic::Zero)]);
        assert_eq!(w.value_at(Picos(5)), Logic::X);
        assert_eq!(w.value_at(Picos(10)), Logic::One);
        assert_eq!(w.value_at(Picos(15)), Logic::One);
        assert_eq!(w.value_at(Picos(20)), Logic::Zero);
        assert_eq!(w.value_at(Picos(100)), Logic::Zero);
    }

    #[test]
    fn settles_by_matches_capture_semantics() {
        let w = wave(&[(10, Logic::One), (20, Logic::Zero)]);
        // Before the first transition the value is X: nothing settled.
        assert!(!w.settles_by(Picos(5), Logic::One));
        // A transition exactly at the sampling instant is captured.
        assert!(w.settles_by(Picos(10), Logic::One));
        assert!(w.settles_by(Picos(15), Logic::One));
        assert!(!w.settles_by(Picos(15), Logic::Zero));
        assert!(w.settles_by(Picos(20), Logic::Zero));
    }

    #[test]
    fn last_transition_reported() {
        assert_eq!(Waveform::default().last_transition(), None);
        let w = wave(&[(10, Logic::One), (20, Logic::Zero)]);
        assert_eq!(w.last_transition(), Some((Picos(20), Logic::Zero)));
    }

    #[test]
    fn rising_edges_listed() {
        let w = wave(&[(10, Logic::One), (20, Logic::Zero), (30, Logic::One)]);
        assert_eq!(w.rising_edges(), vec![Picos(10), Picos(30)]);
    }

    #[test]
    fn transitions_in_window() {
        let w = wave(&[(10, Logic::One), (20, Logic::Zero), (30, Logic::One)]);
        assert_eq!(w.transitions_in(Picos(10), Picos(30)), 2);
        assert_eq!(w.transitions_in(Picos(0), Picos(100)), 3);
        assert_eq!(w.transitions_in(Picos(11), Picos(20)), 0);
    }

    #[test]
    fn render_produces_one_row_per_signal() {
        let mut set = WaveformSet::new(vec![SigId(0)]);
        set.record(SigId(0), Picos(0), Logic::Zero);
        set.record(SigId(0), Picos(50), Logic::One);
        let s = render_waves(&set, &[("d", SigId(0))], Picos(0), Picos(100), Picos(10));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("d"));
        assert!(lines[1].contains('_'));
        assert!(lines[1].contains('|'));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn render_validates_step() {
        let set = WaveformSet::new(vec![]);
        let _ = render_waves(&set, &[], Picos(0), Picos(10), Picos(0));
    }
}
