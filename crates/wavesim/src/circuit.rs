//! Circuit construction API.

use timber_netlist::Picos;

use crate::element::{EdgeDff, Element, Gate, GateFn, Latch, NegEdgeDff, TransmissionGate};
use crate::signal::{Logic, SigId};
use crate::sim::Simulator;

/// Builder for a wave-level circuit: declare signals, wire elements,
/// attach stimuli, then convert into a [`Simulator`].
///
/// # Example
///
/// ```
/// use timber_netlist::Picos;
/// use timber_wavesim::{Circuit, Logic};
///
/// let mut c = Circuit::new();
/// let clk = c.signal("clk");
/// let d = c.signal("d");
/// let q = c.signal("q");
/// c.dff(d, clk, q, Picos(5));
/// c.clock(clk, Picos(100), Picos(400));
/// c.stimulus(d, &[(Picos(0), Logic::One)]);
/// let mut sim = c.into_simulator();
/// sim.run_until(Picos(150));
/// assert_eq!(sim.value(q), Logic::One);
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    names: Vec<String>,
    elements: Vec<Box<dyn Element>>,
    initial: Vec<(Picos, SigId, Logic)>,
    watched: Vec<SigId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Declares a named signal.
    pub fn signal(&mut self, name: &str) -> SigId {
        let id = SigId(self.names.len() as u32);
        self.names.push(name.to_owned());
        id
    }

    /// Adds a custom element.
    pub fn add_element(&mut self, elem: Box<dyn Element>) {
        self.elements.push(elem);
    }

    /// Marks a signal for waveform capture.
    pub fn watch(&mut self, sig: SigId) {
        self.watched.push(sig);
    }

    /// Schedules explicit transitions on a signal.
    pub fn stimulus(&mut self, sig: SigId, transitions: &[(Picos, Logic)]) {
        for &(t, v) in transitions {
            self.initial.push((t, sig, v));
        }
    }

    /// Schedules a 50%-duty clock: rising edges at `0, period, 2·period,
    /// …` and falling edges mid-period, until `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn clock(&mut self, sig: SigId, period: Picos, t_end: Picos) {
        assert!(period > Picos::ZERO, "clock period must be positive");
        let mut t = Picos::ZERO;
        while t <= t_end {
            self.initial.push((t, sig, Logic::One));
            let fall = t + period / 2;
            if fall <= t_end {
                self.initial.push((fall, sig, Logic::Zero));
            }
            t += period;
        }
    }

    /// Schedules a clock whose rising edges start at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or `offset` is negative.
    pub fn clock_with_offset(&mut self, sig: SigId, period: Picos, offset: Picos, t_end: Picos) {
        assert!(period > Picos::ZERO, "clock period must be positive");
        assert!(
            offset.is_non_negative(),
            "clock offset must be non-negative"
        );
        if offset > Picos::ZERO {
            self.initial.push((Picos::ZERO, sig, Logic::Zero));
        }
        let mut t = offset;
        while t <= t_end {
            self.initial.push((t, sig, Logic::One));
            let fall = t + period / 2;
            if fall <= t_end {
                self.initial.push((fall, sig, Logic::Zero));
            }
            t += period;
        }
    }

    // --- gate helpers -----------------------------------------------------

    /// Buffer (delay line): `y = a` after `delay`.
    pub fn buffer(&mut self, a: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Buf, vec![a], y, delay)));
    }

    /// Inverter: `y = !a`.
    pub fn inverter(&mut self, a: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Not, vec![a], y, delay)));
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: SigId, b: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::And, vec![a, b], y, delay)));
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: SigId, b: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Or, vec![a, b], y, delay)));
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: SigId, b: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Nand, vec![a, b], y, delay)));
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: SigId, b: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Nor, vec![a, b], y, delay)));
    }

    /// 2-input XOR (the error comparator in both TIMBER cells).
    pub fn xor2(&mut self, a: SigId, b: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Xor, vec![a, b], y, delay)));
    }

    /// 2:1 mux: `y = sel ? b : a`.
    pub fn mux2(&mut self, a: SigId, b: SigId, sel: SigId, y: SigId, delay: Picos) {
        self.elements
            .push(Box::new(Gate::new(GateFn::Mux2, vec![a, b, sel], y, delay)));
    }

    /// Transmission gate conducting while `ctrl` is high.
    pub fn tgate(&mut self, input: SigId, ctrl: SigId, output: SigId, delay: Picos) {
        self.elements
            .push(Box::new(TransmissionGate::new(input, ctrl, output, delay)));
    }

    /// Level-sensitive latch, transparent while `en` is high.
    pub fn latch(&mut self, d: SigId, en: SigId, q: SigId, delay: Picos) {
        self.elements.push(Box::new(Latch::new(d, en, q, delay)));
    }

    /// Positive-edge D flip-flop.
    pub fn dff(&mut self, d: SigId, clk: SigId, q: SigId, delay: Picos) {
        self.elements.push(Box::new(EdgeDff::new(d, clk, q, delay)));
    }

    /// Negative-edge D flip-flop (error-flag capture in TIMBER cells).
    pub fn neg_dff(&mut self, d: SigId, clk: SigId, q: SigId, delay: Picos) {
        self.elements
            .push(Box::new(NegEdgeDff::new(d, clk, q, delay)));
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Finalises the circuit into a simulator.
    pub fn into_simulator(self) -> Simulator {
        Simulator::new(self.names, self.elements, self.initial, self.watched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_ids_are_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.signal("a"), SigId(0));
        assert_eq!(c.signal("b"), SigId(1));
        assert_eq!(c.signal_count(), 2);
    }

    #[test]
    fn mux_selects_dynamically() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let b = c.signal("b");
        let sel = c.signal("sel");
        let y = c.signal("y");
        c.mux2(a, b, sel, y, Picos(5));
        c.stimulus(a, &[(Picos(0), Logic::One)]);
        c.stimulus(b, &[(Picos(0), Logic::Zero)]);
        c.stimulus(sel, &[(Picos(0), Logic::Zero), (Picos(100), Logic::One)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(50));
        assert_eq!(sim.value(y), Logic::One);
        sim.run_until(Picos(150));
        assert_eq!(sim.value(y), Logic::Zero);
    }

    #[test]
    fn latch_holds_value_through_opaque_phase() {
        let mut c = Circuit::new();
        let d = c.signal("d");
        let en = c.signal("en");
        let q = c.signal("q");
        c.latch(d, en, q, Picos(2));
        c.stimulus(d, &[(Picos(0), Logic::One), (Picos(60), Logic::Zero)]);
        c.stimulus(en, &[(Picos(0), Logic::One), (Picos(50), Logic::Zero)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(200));
        // d dropped after en closed: q keeps the latched 1.
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn clock_with_offset_starts_low() {
        let mut c = Circuit::new();
        let clk = c.signal("clk");
        c.clock_with_offset(clk, Picos(100), Picos(30), Picos(300));
        c.watch(clk);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(300));
        let w = sim.waves().trace(clk).unwrap();
        assert_eq!(w.value_at(Picos(10)), Logic::Zero);
        assert_eq!(w.value_at(Picos(40)), Logic::One);
    }

    #[test]
    fn xor_detects_mismatch() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let b = c.signal("b");
        let y = c.signal("y");
        c.xor2(a, b, y, Picos(3));
        c.stimulus(a, &[(Picos(0), Logic::One)]);
        c.stimulus(b, &[(Picos(0), Logic::One), (Picos(50), Logic::Zero)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(40));
        assert_eq!(sim.value(y), Logic::Zero);
        sim.run_until(Picos(60));
        assert_eq!(sim.value(y), Logic::One);
    }
}
