//! The event-driven simulation kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use timber_netlist::Picos;
use timber_telemetry::{Counter, NoopSink, TelemetrySink};

use crate::element::Element;
use crate::signal::{Logic, SigId};
use crate::wave::WaveformSet;

/// Maximum zero-delay evaluation rounds within one timestamp before the
/// kernel declares combinational oscillation.
const MAX_DELTAS: usize = 10_000;

/// Discrete-event simulator over a built [`crate::Circuit`].
///
/// The event queue holds `(time, seq, signal, value)` tuples ordered by
/// time, with the insertion sequence number as a deterministic
/// tie-breaker.
///
/// Construct via [`crate::Circuit::into_simulator`].
#[derive(Debug)]
pub struct Simulator {
    values: Vec<Logic>,
    names: Vec<String>,
    elements: Vec<Box<dyn Element>>,
    /// For each signal, indices of elements sensitive to it.
    sensitivity: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<(Picos, u64, u32, Logic)>>,
    seq: u64,
    now: Picos,
    waves: WaveformSet,
}

impl Simulator {
    pub(crate) fn new(
        names: Vec<String>,
        elements: Vec<Box<dyn Element>>,
        initial_events: Vec<(Picos, SigId, Logic)>,
        watched: Vec<SigId>,
    ) -> Simulator {
        let n = names.len();
        let mut sensitivity = vec![Vec::new(); n];
        for (idx, elem) in elements.iter().enumerate() {
            for sig in elem.sensitivity() {
                sensitivity[sig.0 as usize].push(idx);
            }
        }
        let mut sim = Simulator {
            values: vec![Logic::X; n],
            names,
            elements,
            sensitivity,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Picos::ZERO,
            waves: WaveformSet::new(watched),
        };
        for (t, sig, v) in initial_events {
            sim.schedule(t, sig, v);
        }
        sim
    }

    fn schedule(&mut self, time: Picos, sig: SigId, value: Logic) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past ({time} < {})",
            self.now
        );
        self.queue.push(Reverse((time, self.seq, sig.0, value)));
        self.seq += 1;
    }

    /// Current simulation time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Present value of a signal.
    pub fn value(&self, sig: SigId) -> Logic {
        self.values[sig.0 as usize]
    }

    /// Name of a signal.
    pub fn name(&self, sig: SigId) -> &str {
        &self.names[sig.0 as usize]
    }

    /// Captured waveforms of the watched signals.
    pub fn waves(&self) -> &WaveformSet {
        &self.waves
    }

    /// Injects a value change at an absolute future time (test stimuli).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn inject(&mut self, time: Picos, sig: SigId, value: Logic) {
        self.schedule(time, sig, value);
    }

    /// Runs until the queue is exhausted or `t_end` is reached. Events
    /// scheduled exactly at `t_end` are processed.
    ///
    /// # Panics
    ///
    /// Panics if zero-delay feedback oscillates (more than `MAX_DELTAS`
    /// rounds at one timestamp).
    pub fn run_until(&mut self, t_end: Picos) {
        self.run_until_telemetry(t_end, &mut NoopSink);
    }

    /// [`Simulator::run_until`] with telemetry: counts processed queue
    /// events ([`Counter::WaveEvents`]) and actual signal transitions
    /// ([`Counter::WaveTransitions`]) into `sink`. With [`NoopSink`]
    /// this is exactly `run_until`.
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::run_until`] does.
    pub fn run_until_telemetry<S: TelemetrySink>(&mut self, t_end: Picos, sink: &mut S) {
        while let Some(Reverse((t, _, _, _))) = self.queue.peek().copied() {
            if t > t_end {
                break;
            }
            self.advance_one_timestep(t, sink);
        }
        if self.now < t_end {
            self.now = t_end;
        }
    }

    /// Processes every event at the earliest pending timestamp,
    /// including zero-delay follow-ups at the same time.
    fn advance_one_timestep<S: TelemetrySink>(&mut self, t: Picos, sink: &mut S) {
        self.now = t;
        let mut deltas = 0usize;
        loop {
            // Collect all events at exactly time t.
            let mut changed: Vec<SigId> = Vec::new();
            let mut popped = 0u64;
            while let Some(Reverse((et, _, _, _))) = self.queue.peek().copied() {
                if et != t {
                    break;
                }
                let Reverse((_, _, sig_raw, value)) = self.queue.pop().expect("peeked");
                popped += 1;
                let sig = SigId(sig_raw);
                let slot = &mut self.values[sig_raw as usize];
                if *slot != value {
                    *slot = value;
                    self.waves.record(sig, t, value);
                    changed.push(sig);
                }
            }
            if S::ENABLED && popped > 0 {
                sink.add(Counter::WaveEvents, popped);
                sink.add(Counter::WaveTransitions, changed.len() as u64);
            }
            if changed.is_empty() {
                break;
            }
            deltas += 1;
            assert!(
                deltas <= MAX_DELTAS,
                "zero-delay oscillation detected at {t}"
            );
            // Evaluate each sensitive element once per round.
            let mut to_eval: Vec<usize> = changed
                .iter()
                .flat_map(|s| self.sensitivity[s.0 as usize].iter().copied())
                .collect();
            to_eval.sort_unstable();
            to_eval.dedup();
            let values = &self.values;
            let read = |s: SigId| values[s.0 as usize];
            let mut outputs = Vec::new();
            for idx in to_eval {
                outputs.extend(self.elements[idx].eval(t, &read));
            }
            for sch in outputs {
                let when = t + sch.delay;
                self.queue
                    .push(Reverse((when, self.seq, sch.sig.0, sch.value)));
                self.seq += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let b = c.signal("b");
        let y = c.signal("y");
        c.inverter(a, b, Picos(10));
        c.inverter(b, y, Picos(10));
        c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(100), Logic::One)]);
        c.watch(y);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(105));
        // a rose at 100; y is still at its old value (b=1->y=0 settled
        // by t=20 after initialisation).
        assert_eq!(sim.value(y), Logic::Zero);
        sim.run_until(Picos(125));
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn glitch_propagates_with_transport_delay() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let y = c.signal("y");
        c.buffer(a, y, Picos(5));
        c.watch(y);
        // 1ps-wide pulse.
        c.stimulus(
            a,
            &[
                (Picos(0), Logic::Zero),
                (Picos(50), Logic::One),
                (Picos(51), Logic::Zero),
            ],
        );
        let mut sim = c.into_simulator();
        sim.run_until(Picos(100));
        let wave = sim.waves().trace(y).expect("watched");
        // y: X->0 at 5, 0->1 at 55, 1->0 at 56.
        let transitions: Vec<(Picos, Logic)> = wave.samples().to_vec();
        assert!(transitions.contains(&(Picos(55), Logic::One)));
        assert!(transitions.contains(&(Picos(56), Logic::Zero)));
    }

    #[test]
    fn simultaneous_events_processed_deterministically() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let b = c.signal("b");
        let y = c.signal("y");
        c.and2(a, b, y, Picos(4));
        c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(10), Logic::One)]);
        c.stimulus(b, &[(Picos(0), Logic::Zero), (Picos(10), Logic::One)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(20));
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn run_until_stops_at_bound() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let y = c.signal("y");
        c.inverter(a, y, Picos(10));
        c.stimulus(a, &[(Picos(100), Logic::One)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(50));
        assert_eq!(sim.now(), Picos(50));
        assert_eq!(sim.value(a), Logic::X);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn injecting_past_events_rejected() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let mut sim = c.into_simulator();
        sim.run_until(Picos(100));
        sim.inject(Picos(50), a, Logic::One);
    }

    #[test]
    #[should_panic(expected = "zero-delay oscillation")]
    fn zero_delay_loop_is_detected() {
        // inv(y) -> y with zero delay: an unstable combinational loop
        // that must trip the delta guard rather than hang.
        let mut c = Circuit::new();
        let y = c.signal("y");
        let ny = c.signal("ny");
        c.inverter(y, ny, Picos(0));
        c.buffer(ny, y, Picos(0));
        c.stimulus(y, &[(Picos(0), Logic::Zero)]);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(10));
    }

    #[test]
    fn positive_delay_loop_oscillates_boundedly() {
        // The same loop with real delays is a ring oscillator: it must
        // simulate fine and toggle with period 2*(d1+d2).
        let mut c = Circuit::new();
        let y = c.signal("y");
        let ny = c.signal("ny");
        c.inverter(y, ny, Picos(7));
        c.buffer(ny, y, Picos(3));
        c.stimulus(y, &[(Picos(0), Logic::Zero)]);
        c.watch(y);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(200));
        let w = sim.waves().trace(y).unwrap();
        // Transitions every 10ps after start-up.
        assert!(
            w.transitions_in(Picos(20), Picos(120)) == 10,
            "ring oscillator period: {:?}",
            w.samples()
        );
    }

    #[test]
    fn telemetry_counts_events_and_transitions() {
        use timber_telemetry::{Counter, Recorder, RecorderConfig};
        let build = || {
            let mut c = Circuit::new();
            let a = c.signal("a");
            let b = c.signal("b");
            let y = c.signal("y");
            c.inverter(a, b, Picos(10));
            c.inverter(b, y, Picos(10));
            c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(100), Logic::One)]);
            c.into_simulator()
        };
        let mut rec = Recorder::new(RecorderConfig::new(1, Picos(1000)));
        let mut sim = build();
        sim.run_until_telemetry(Picos(200), &mut rec);
        let events = rec.counter(Counter::WaveEvents);
        let transitions = rec.counter(Counter::WaveTransitions);
        assert!(events > 0);
        assert!(transitions > 0);
        assert!(transitions <= events, "a transition needs an event");

        // The instrumented run must not change simulation results.
        let mut plain = build();
        plain.run_until(Picos(200));
        assert_eq!(plain.now(), sim.now());
    }

    #[test]
    fn clock_generator_produces_edges() {
        let mut c = Circuit::new();
        let clk = c.signal("clk");
        c.clock(clk, Picos(100), Picos(500));
        c.watch(clk);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(500));
        let wave = sim.waves().trace(clk).expect("watched");
        // Rising at 0,100,...,500 (6), falling at 50,...,450 (5).
        assert_eq!(wave.samples().len(), 11);
        assert_eq!(wave.value_at(Picos(25)), Logic::One);
        assert_eq!(wave.value_at(Picos(75)), Logic::Zero);
        assert_eq!(wave.value_at(Picos(125)), Logic::One);
    }
}
