//! VCD (Value Change Dump) export of captured waveforms.
//!
//! Writes IEEE-1364-style VCD text so captured TIMBER waveforms can be
//! inspected in standard viewers (GTKWave etc.). Only the subset of the
//! format needed for scalar wires is emitted.

use std::fmt::Write as _;

use timber_netlist::Picos;

use crate::signal::{Logic, SigId};
use crate::wave::WaveformSet;

fn ident(index: usize) -> String {
    // Printable-ASCII identifier code, base-94 starting at '!'.
    let mut n = index;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn logic_char(v: Logic) -> char {
    match v {
        Logic::Zero => '0',
        Logic::One => '1',
        Logic::X => 'x',
    }
}

/// Serialises the given signals of a [`WaveformSet`] as VCD text.
///
/// `signals` pairs a display name with a watched signal; signals that
/// were not watched produce no value changes (they stay `x`).
///
/// # Example
///
/// ```
/// use timber_netlist::Picos;
/// use timber_wavesim::{vcd, Circuit, Logic};
///
/// let mut c = Circuit::new();
/// let a = c.signal("a");
/// c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(5), Logic::One)]);
/// c.watch(a);
/// let mut sim = c.into_simulator();
/// sim.run_until(Picos(10));
/// let text = vcd::to_vcd(sim.waves(), &[("a", a)], Picos(10));
/// assert!(text.contains("$var wire 1"));
/// assert!(text.contains("$enddefinitions"));
/// ```
pub fn to_vcd(waves: &WaveformSet, signals: &[(&str, SigId)], t_end: Picos) -> String {
    let mut out = String::new();
    out.push_str("$comment timber-wavesim dump $end\n");
    out.push_str("$timescale 1ps $end\n");
    out.push_str("$scope module timber $end\n");
    for (i, (name, _)) in signals.iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {} $end", ident(i), name);
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values.
    out.push_str("#0\n$dumpvars\n");
    for (i, &(_, sig)) in signals.iter().enumerate() {
        let v = waves
            .trace(sig)
            .map(|w| w.value_at(Picos::ZERO))
            .unwrap_or(Logic::X);
        let _ = writeln!(out, "{}{}", logic_char(v), ident(i));
    }
    out.push_str("$end\n");

    // Merge all transitions in time order.
    let mut events: Vec<(Picos, usize, Logic)> = Vec::new();
    for (i, &(_, sig)) in signals.iter().enumerate() {
        if let Some(w) = waves.trace(sig) {
            for &(t, v) in w.samples() {
                if t > Picos::ZERO && t <= t_end {
                    events.push((t, i, v));
                }
            }
        }
    }
    events.sort_by_key(|&(t, i, _)| (t, i));
    let mut last_time = None;
    for (t, i, v) in events {
        if last_time != Some(t) {
            let _ = writeln!(out, "#{}", t.as_ps());
            last_time = Some(t);
        }
        let _ = writeln!(out, "{}{}", logic_char(v), ident(i));
    }
    let _ = writeln!(out, "#{}", t_end.as_ps());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn ident_is_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn vcd_contains_header_and_transitions() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let y = c.signal("y");
        c.inverter(a, y, Picos(5));
        c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(20), Logic::One)]);
        c.watch(a);
        c.watch(y);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(50));
        let text = to_vcd(sim.waves(), &[("a", a), ("y", y)], Picos(50));
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 \" y $end"));
        assert!(text.contains("#20\n1!"), "a rises at 20:\n{text}");
        assert!(text.contains("#25\n0\""), "y falls at 25:\n{text}");
        assert!(text.ends_with("#50\n"));
    }

    #[test]
    fn unwatched_signals_stay_x() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        c.stimulus(a, &[(Picos(0), Logic::One)]);
        // not watched
        let mut sim = c.into_simulator();
        sim.run_until(Picos(10));
        let text = to_vcd(sim.waves(), &[("a", a)], Picos(10));
        assert!(text.contains("x!"), "{text}");
    }

    #[test]
    fn simultaneous_changes_share_one_timestamp() {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let b = c.signal("b");
        c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(10), Logic::One)]);
        c.stimulus(b, &[(Picos(0), Logic::Zero), (Picos(10), Logic::One)]);
        c.watch(a);
        c.watch(b);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(20));
        let text = to_vcd(sim.waves(), &[("a", a), ("b", b)], Picos(20));
        assert_eq!(text.matches("#10\n").count(), 1);
    }
}
