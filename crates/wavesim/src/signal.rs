//! Three-valued logic and signal identifiers.

use std::fmt;

/// A signal value: `0`, `1`, or unknown (`X`).
///
/// Unknown values model un-initialised storage nodes and metastable
/// samples; they propagate through gates with Kleene semantics (an `X`
/// input yields `X` unless the other inputs force the output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / un-initialised / metastable.
    #[default]
    X,
}

impl Logic {
    /// Converts a bool.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// `Some(bool)` for a known value, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True when the value is known (not `X`).
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Kleene NOT.
    #[allow(clippy::should_implement_trait)] // `!x` on a 3-valued type would hide the Kleene semantics
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    /// Kleene AND.
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Kleene OR.
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Kleene XOR.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a != b),
            _ => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
        };
        write!(f, "{c}")
    }
}

/// Identifier of a signal (wire) in a [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

impl fmt::Display for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_and_truth_table() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn kleene_or_truth_table() {
        use Logic::*;
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(Zero.or(X), X);
    }

    #[test]
    fn kleene_not_and_xor() {
        use Logic::*;
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(X.not(), X);
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_known());
        assert!(!Logic::X.is_known());
    }

    #[test]
    fn display() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::One.to_string(), "1");
        assert_eq!(Logic::X.to_string(), "X");
        assert_eq!(SigId(4).to_string(), "sig#4");
    }
}
