//! Property-based tests (proptest) for the waveform simulator.

#![cfg(test)]

use proptest::prelude::*;

use timber_netlist::Picos;

use crate::circuit::Circuit;
use crate::element::GateFn;
use crate::signal::Logic;

fn all_logic() -> [Logic; 3] {
    [Logic::Zero, Logic::One, Logic::X]
}

#[test]
fn kleene_algebra_laws_hold_exhaustively() {
    for a in all_logic() {
        // Involution.
        assert_eq!(a.not().not(), a);
        for b in all_logic() {
            // Commutativity.
            assert_eq!(a.and(b), b.and(a));
            assert_eq!(a.or(b), b.or(a));
            assert_eq!(a.xor(b), b.xor(a));
            // De Morgan.
            assert_eq!(a.and(b).not(), a.not().or(b.not()));
            assert_eq!(a.or(b).not(), a.not().and(b.not()));
            for c in all_logic() {
                // Associativity.
                assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                assert_eq!(a.or(b).or(c), a.or(b.or(c)));
            }
        }
    }
}

#[test]
fn gatefn_consistent_with_kleene_ops() {
    for a in all_logic() {
        for b in all_logic() {
            assert_eq!(GateFn::And.eval(&[a, b]), a.and(b));
            assert_eq!(GateFn::Or.eval(&[a, b]), a.or(b));
            assert_eq!(GateFn::Nand.eval(&[a, b]), a.and(b).not());
            assert_eq!(GateFn::Nor.eval(&[a, b]), a.or(b).not());
            assert_eq!(GateFn::Xor.eval(&[a, b]), a.xor(b));
            assert_eq!(GateFn::Xnor.eval(&[a, b]), a.xor(b).not());
        }
    }
}

proptest! {
    /// Buffer chains compose delays additively: a transition at `t`
    /// emerges at `t + d1 + d2`.
    #[test]
    fn buffer_delays_are_additive(
        d1 in 1i64..200,
        d2 in 1i64..200,
        t in 1i64..500,
    ) {
        let mut c = Circuit::new();
        let a = c.signal("a");
        let m = c.signal("m");
        let y = c.signal("y");
        c.buffer(a, m, Picos(d1));
        c.buffer(m, y, Picos(d2));
        c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(t), Logic::One)]);
        c.watch(y);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(t + d1 + d2 + 10));
        let w = sim.waves().trace(y).unwrap();
        let rises = w.rising_edges();
        prop_assert_eq!(rises.len(), 1);
        prop_assert_eq!(rises[0], Picos(t + d1 + d2));
    }

    /// A disabled latch never changes its output, whatever the data
    /// does.
    #[test]
    fn opaque_latch_holds(transitions in proptest::collection::vec(10i64..990, 1..8)) {
        let mut c = Circuit::new();
        let d = c.signal("d");
        let en = c.signal("en");
        let q = c.signal("q");
        c.latch(d, en, q, Picos(2));
        // Enable once to seat a known value, then go opaque.
        c.stimulus(en, &[(Picos(0), Logic::One), (Picos(5), Logic::Zero)]);
        c.stimulus(d, &[(Picos(0), Logic::Zero)]);
        let mut stim: Vec<(Picos, Logic)> = Vec::new();
        let mut level = false;
        let mut times = transitions.clone();
        times.sort_unstable();
        for t in times {
            level = !level;
            stim.push((Picos(1000 + t), Logic::from_bool(level)));
        }
        c.stimulus(d, &stim);
        c.watch(q);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(2500));
        let w = sim.waves().trace(q).unwrap();
        // One initial transition (X -> 0) at most; nothing after the
        // enable closed at t=5 (+latch delay).
        prop_assert_eq!(w.transitions_in(Picos(10), Picos(2500)), 0,
            "opaque latch must hold: {:?}", w.samples());
    }

    /// An inverter chain of length n inverts iff n is odd, after the
    /// summed delay.
    #[test]
    fn inverter_chain_parity(n in 1usize..8, delay in 1i64..50) {
        let mut c = Circuit::new();
        let mut prev = c.signal("in");
        let input = prev;
        for i in 0..n {
            let next = c.signal(&format!("n{i}"));
            c.inverter(prev, next, Picos(delay));
            prev = next;
        }
        c.stimulus(input, &[(Picos(0), Logic::One)]);
        c.watch(prev);
        let mut sim = c.into_simulator();
        sim.run_until(Picos(delay * n as i64 + 10));
        let expect = if n % 2 == 1 { Logic::Zero } else { Logic::One };
        prop_assert_eq!(sim.value(prev), expect);
    }

    /// Event delivery is order-independent for independent signals: two
    /// stimuli schedules produce the same final state regardless of
    /// insertion order.
    #[test]
    fn stimulus_insertion_order_irrelevant(ta in 1i64..100, tb in 1i64..100) {
        let build = |swap: bool| {
            let mut c = Circuit::new();
            let a = c.signal("a");
            let b = c.signal("b");
            let y = c.signal("y");
            c.xor2(a, b, y, Picos(3));
            let sa = [(Picos(0), Logic::Zero), (Picos(ta), Logic::One)];
            let sb = [(Picos(0), Logic::Zero), (Picos(tb), Logic::One)];
            if swap {
                c.stimulus(b, &sb);
                c.stimulus(a, &sa);
            } else {
                c.stimulus(a, &sa);
                c.stimulus(b, &sb);
            }
            c.watch(y);
            let mut sim = c.into_simulator();
            sim.run_until(Picos(300));
            sim.waves().trace(y).unwrap().samples().to_vec()
        };
        prop_assert_eq!(build(false), build(true));
    }
}
