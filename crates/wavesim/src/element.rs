//! Circuit primitives: gates, transmission gates, latches, flip-flops.

use timber_netlist::Picos;

use crate::signal::{Logic, SigId};

/// An output update an element wants applied after a delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled {
    /// Target signal.
    pub sig: SigId,
    /// New value.
    pub value: Logic,
    /// Delay from now until the value appears.
    pub delay: Picos,
}

/// A circuit element evaluated whenever one of its sensitivity signals
/// changes.
pub trait Element: std::fmt::Debug + Send {
    /// Signals whose changes trigger [`eval`](Element::eval).
    fn sensitivity(&self) -> Vec<SigId>;

    /// Reacts to the current signal state; `read` returns the present
    /// value of any signal. Returns output updates to schedule.
    fn eval(&mut self, now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled>;
}

/// Combinational functions available to [`Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateFn {
    /// Single-input buffer (also used as a delay line).
    Buf,
    /// Single-input inverter.
    Not,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 mux with inputs `[a, b, sel]`: `a` when sel=0, `b` when sel=1.
    Mux2,
}

impl GateFn {
    /// Kleene evaluation over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not suit the function.
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        match self {
            GateFn::Buf => {
                assert_eq!(inputs.len(), 1);
                inputs[0]
            }
            GateFn::Not => {
                assert_eq!(inputs.len(), 1);
                inputs[0].not()
            }
            GateFn::And => inputs.iter().copied().fold(Logic::One, Logic::and),
            GateFn::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateFn::Nand => GateFn::And.eval(inputs).not(),
            GateFn::Nor => GateFn::Or.eval(inputs).not(),
            GateFn::Xor => {
                assert_eq!(inputs.len(), 2);
                inputs[0].xor(inputs[1])
            }
            GateFn::Xnor => {
                assert_eq!(inputs.len(), 2);
                inputs[0].xor(inputs[1]).not()
            }
            GateFn::Mux2 => {
                assert_eq!(inputs.len(), 3);
                match inputs[2] {
                    Logic::Zero => inputs[0],
                    Logic::One => inputs[1],
                    Logic::X => {
                        if inputs[0] == inputs[1] {
                            inputs[0]
                        } else {
                            Logic::X
                        }
                    }
                }
            }
        }
    }
}

/// A combinational gate with a single propagation delay.
#[derive(Debug)]
pub struct Gate {
    func: GateFn,
    inputs: Vec<SigId>,
    output: SigId,
    delay: Picos,
}

impl Gate {
    /// Creates a gate.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn new(func: GateFn, inputs: Vec<SigId>, output: SigId, delay: Picos) -> Gate {
        assert!(delay.is_non_negative(), "gate delay must be non-negative");
        Gate {
            func,
            inputs,
            output,
            delay,
        }
    }
}

impl Element for Gate {
    fn sensitivity(&self) -> Vec<SigId> {
        self.inputs.clone()
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        let ins: Vec<Logic> = self.inputs.iter().map(|&s| read(s)).collect();
        vec![Scheduled {
            sig: self.output,
            value: self.func.eval(&ins),
            delay: self.delay,
        }]
    }
}

/// A combinational gate evaluating an arbitrary
/// [`timber_netlist::LogicFn`] truth table with pessimistic X
/// semantics: if the unknown inputs can change the output, the output
/// is X.
///
/// This is the element netlist compilation maps library cells onto
/// (the fixed [`GateFn`] menu only covers the hand-built circuits).
#[derive(Debug)]
pub struct TableGate {
    func: timber_netlist::LogicFn,
    inputs: Vec<SigId>,
    output: SigId,
    delay: Picos,
}

impl TableGate {
    /// Creates a table-driven gate.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the function arity or
    /// the delay is negative.
    pub fn new(
        func: timber_netlist::LogicFn,
        inputs: Vec<SigId>,
        output: SigId,
        delay: Picos,
    ) -> TableGate {
        assert_eq!(
            inputs.len(),
            func.arity(),
            "one input signal per function input"
        );
        assert!(delay.is_non_negative(), "gate delay must be non-negative");
        TableGate {
            func,
            inputs,
            output,
            delay,
        }
    }

    fn eval_kleene(&self, values: &[Logic]) -> Logic {
        let unknown: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == Logic::X)
            .map(|(i, _)| i)
            .collect();
        let mut bools: Vec<bool> = values
            .iter()
            .map(|v| v.to_bool().unwrap_or(false))
            .collect();
        if unknown.is_empty() {
            return Logic::from_bool(self.func.eval(&bools));
        }
        // Enumerate all assignments of the unknown inputs (≤ 2^6).
        let mut result: Option<bool> = None;
        for combo in 0..(1u32 << unknown.len()) {
            for (bit, &idx) in unknown.iter().enumerate() {
                bools[idx] = (combo >> bit) & 1 == 1;
            }
            let out = self.func.eval(&bools);
            match result {
                None => result = Some(out),
                Some(prev) if prev != out => return Logic::X,
                Some(_) => {}
            }
        }
        Logic::from_bool(result.expect("at least one combo"))
    }
}

impl Element for TableGate {
    fn sensitivity(&self) -> Vec<SigId> {
        self.inputs.clone()
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        let values: Vec<Logic> = self.inputs.iter().map(|&s| read(s)).collect();
        vec![Scheduled {
            sig: self.output,
            value: self.eval_kleene(&values),
            delay: self.delay,
        }]
    }
}

/// A transmission gate: when `ctrl` is high the output follows the
/// input; when low the output node *holds its last value* (the storage
/// behaviour the TIMBER flip-flop's P0/P1 gates rely on); when `ctrl` is
/// unknown the output is driven `X`.
#[derive(Debug)]
pub struct TransmissionGate {
    input: SigId,
    ctrl: SigId,
    output: SigId,
    delay: Picos,
}

impl TransmissionGate {
    /// Creates a transmission gate with the given conduction delay.
    pub fn new(input: SigId, ctrl: SigId, output: SigId, delay: Picos) -> TransmissionGate {
        assert!(delay.is_non_negative(), "delay must be non-negative");
        TransmissionGate {
            input,
            ctrl,
            output,
            delay,
        }
    }
}

impl Element for TransmissionGate {
    fn sensitivity(&self) -> Vec<SigId> {
        vec![self.input, self.ctrl]
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        match read(self.ctrl) {
            Logic::One => vec![Scheduled {
                sig: self.output,
                value: read(self.input),
                delay: self.delay,
            }],
            Logic::Zero => Vec::new(), // output node holds
            Logic::X => vec![Scheduled {
                sig: self.output,
                value: Logic::X,
                delay: self.delay,
            }],
        }
    }
}

/// A level-sensitive latch: `q` follows `d` while `en` is high, holds
/// while `en` is low.
#[derive(Debug)]
pub struct Latch {
    d: SigId,
    en: SigId,
    q: SigId,
    delay: Picos,
}

impl Latch {
    /// Creates a latch with the given D-to-Q delay.
    pub fn new(d: SigId, en: SigId, q: SigId, delay: Picos) -> Latch {
        assert!(delay.is_non_negative(), "delay must be non-negative");
        Latch { d, en, q, delay }
    }
}

impl Element for Latch {
    fn sensitivity(&self) -> Vec<SigId> {
        vec![self.d, self.en]
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        match read(self.en) {
            Logic::One => vec![Scheduled {
                sig: self.q,
                value: read(self.d),
                delay: self.delay,
            }],
            Logic::Zero => Vec::new(),
            Logic::X => vec![Scheduled {
                sig: self.q,
                value: Logic::X,
                delay: self.delay,
            }],
        }
    }
}

/// A conventional positive-edge-triggered D flip-flop (used for the
/// baseline elements and test harness registers).
#[derive(Debug)]
pub struct EdgeDff {
    d: SigId,
    clk: SigId,
    q: SigId,
    delay: Picos,
    last_clk: Logic,
}

impl EdgeDff {
    /// Creates a flip-flop with the given clock-to-Q delay.
    pub fn new(d: SigId, clk: SigId, q: SigId, delay: Picos) -> EdgeDff {
        assert!(delay.is_non_negative(), "delay must be non-negative");
        EdgeDff {
            d,
            clk,
            q,
            delay,
            last_clk: Logic::X,
        }
    }
}

impl Element for EdgeDff {
    fn sensitivity(&self) -> Vec<SigId> {
        vec![self.clk]
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        let clk = read(self.clk);
        let rising = self.last_clk == Logic::Zero && clk == Logic::One;
        self.last_clk = clk;
        if rising {
            vec![Scheduled {
                sig: self.q,
                value: read(self.d),
                delay: self.delay,
            }]
        } else {
            Vec::new()
        }
    }
}

/// A negative-edge-triggered D flip-flop. The TIMBER error flag is
/// latched "on the falling edge of the clock" (paper §4), which this
/// element implements directly.
#[derive(Debug)]
pub struct NegEdgeDff {
    d: SigId,
    clk: SigId,
    q: SigId,
    delay: Picos,
    last_clk: Logic,
}

impl NegEdgeDff {
    /// Creates a falling-edge flip-flop with the given clock-to-Q delay.
    pub fn new(d: SigId, clk: SigId, q: SigId, delay: Picos) -> NegEdgeDff {
        assert!(delay.is_non_negative(), "delay must be non-negative");
        NegEdgeDff {
            d,
            clk,
            q,
            delay,
            last_clk: Logic::X,
        }
    }
}

impl Element for NegEdgeDff {
    fn sensitivity(&self) -> Vec<SigId> {
        vec![self.clk]
    }

    fn eval(&mut self, _now: Picos, read: &dyn Fn(SigId) -> Logic) -> Vec<Scheduled> {
        let clk = read(self.clk);
        let falling = self.last_clk == Logic::One && clk == Logic::Zero;
        self.last_clk = clk;
        if falling {
            vec![Scheduled {
                sig: self.q,
                value: read(self.d),
                delay: self.delay,
            }]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn gatefn_kleene_semantics() {
        assert_eq!(GateFn::And.eval(&[One, X]), X);
        assert_eq!(GateFn::And.eval(&[Zero, X]), Zero);
        assert_eq!(GateFn::Or.eval(&[One, X]), One);
        assert_eq!(GateFn::Nand.eval(&[One, One]), Zero);
        assert_eq!(GateFn::Nor.eval(&[Zero, Zero]), One);
        assert_eq!(GateFn::Xor.eval(&[One, Zero]), One);
        assert_eq!(GateFn::Xnor.eval(&[One, One]), One);
        assert_eq!(GateFn::Not.eval(&[X]), X);
        assert_eq!(GateFn::Buf.eval(&[One]), One);
    }

    #[test]
    fn mux_with_unknown_select() {
        assert_eq!(GateFn::Mux2.eval(&[One, One, X]), One);
        assert_eq!(GateFn::Mux2.eval(&[One, Zero, X]), X);
        assert_eq!(GateFn::Mux2.eval(&[One, Zero, Zero]), One);
        assert_eq!(GateFn::Mux2.eval(&[One, Zero, One]), Zero);
    }

    fn read_fixed(vals: Vec<(SigId, Logic)>) -> impl Fn(SigId) -> Logic {
        move |s| {
            vals.iter()
                .find(|(id, _)| *id == s)
                .map(|(_, v)| *v)
                .unwrap_or(Logic::X)
        }
    }

    #[test]
    fn table_gate_matches_logicfn_on_known_inputs() {
        use timber_netlist::LogicFn;
        let mut g = TableGate::new(
            LogicFn::fa_carry(),
            vec![SigId(0), SigId(1), SigId(2)],
            SigId(3),
            Picos(5),
        );
        let read = read_fixed(vec![(SigId(0), One), (SigId(1), One), (SigId(2), Zero)]);
        let out = g.eval(Picos(0), &read);
        assert_eq!(out[0].value, One);
        assert_eq!(out[0].delay, Picos(5));
    }

    #[test]
    fn table_gate_x_semantics_are_pessimistic_but_exact() {
        use timber_netlist::LogicFn;
        // AND with one X input: 0&X = 0 (determined), 1&X = X.
        let mut g = TableGate::new(
            LogicFn::and(2),
            vec![SigId(0), SigId(1)],
            SigId(2),
            Picos(1),
        );
        let read = read_fixed(vec![(SigId(0), Zero), (SigId(1), X)]);
        assert_eq!(g.eval(Picos(0), &read)[0].value, Zero);
        let read = read_fixed(vec![(SigId(0), One), (SigId(1), X)]);
        assert_eq!(g.eval(Picos(0), &read)[0].value, X);
    }

    #[test]
    #[should_panic(expected = "one input signal per function input")]
    fn table_gate_validates_arity() {
        use timber_netlist::LogicFn;
        let _ = TableGate::new(LogicFn::and(2), vec![SigId(0)], SigId(1), Picos(1));
    }

    #[test]
    fn tgate_holds_when_off() {
        let mut tg = TransmissionGate::new(SigId(0), SigId(1), SigId(2), Picos(2));
        let off = read_fixed(vec![(SigId(0), One), (SigId(1), Zero)]);
        assert!(tg.eval(Picos(0), &off).is_empty());
        let on = read_fixed(vec![(SigId(0), One), (SigId(1), One)]);
        let out = tg.eval(Picos(0), &on);
        assert_eq!(
            out,
            vec![Scheduled {
                sig: SigId(2),
                value: One,
                delay: Picos(2)
            }]
        );
    }

    #[test]
    fn latch_transparent_only_when_enabled() {
        let mut l = Latch::new(SigId(0), SigId(1), SigId(2), Picos(3));
        let transparent = read_fixed(vec![(SigId(0), Zero), (SigId(1), One)]);
        assert_eq!(l.eval(Picos(0), &transparent)[0].value, Zero);
        let opaque = read_fixed(vec![(SigId(0), One), (SigId(1), Zero)]);
        assert!(l.eval(Picos(0), &opaque).is_empty());
    }

    #[test]
    fn edge_dff_captures_only_on_rising_edge() {
        let mut ff = EdgeDff::new(SigId(0), SigId(1), SigId(2), Picos(4));
        let low = read_fixed(vec![(SigId(0), One), (SigId(1), Zero)]);
        assert!(ff.eval(Picos(0), &low).is_empty());
        let high = read_fixed(vec![(SigId(0), One), (SigId(1), One)]);
        let out = ff.eval(Picos(10), &high);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, One);
        // Still high: no new capture.
        assert!(ff.eval(Picos(20), &high).is_empty());
    }

    #[test]
    fn neg_edge_dff_captures_on_falling_edge() {
        let mut ff = NegEdgeDff::new(SigId(0), SigId(1), SigId(2), Picos(4));
        let high = read_fixed(vec![(SigId(0), One), (SigId(1), One)]);
        assert!(ff.eval(Picos(0), &high).is_empty());
        let low = read_fixed(vec![(SigId(0), One), (SigId(1), Zero)]);
        let out = ff.eval(Picos(10), &low);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, One);
    }

    #[test]
    fn x_clock_does_not_trigger_edges() {
        let mut ff = EdgeDff::new(SigId(0), SigId(1), SigId(2), Picos(4));
        let xclk = read_fixed(vec![(SigId(0), One), (SigId(1), X)]);
        assert!(ff.eval(Picos(0), &xclk).is_empty());
        let high = read_fixed(vec![(SigId(0), One), (SigId(1), One)]);
        // X -> 1 is not a clean rising edge.
        assert!(ff.eval(Picos(5), &high).is_empty());
    }
}
