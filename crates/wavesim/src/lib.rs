//! # timber-wavesim
//!
//! A picosecond-resolution, discrete-event digital waveform simulator —
//! the reproduction's stand-in for the SPICE simulations the TIMBER
//! paper uses to validate its two sequential cells (its Figs. 5 and 7).
//!
//! The simulator provides the circuit primitives the TIMBER flip-flop
//! and TIMBER latch schematics are drawn from (transmission gates,
//! level-sensitive latches, delay lines, ordinary gates, clock and data
//! stimuli), three-valued logic (`0`, `1`, `X`) so unknown start-up
//! state propagates honestly, and waveform capture with an ASCII
//! renderer used by the figure-reproduction binary.
//!
//! What Figs. 5/7 demonstrate is *logical-temporal* behaviour — which
//! master latch drives the slave when, when the error signal latches —
//! so a digital event simulator at 1 ps resolution reproduces every
//! labelled transition of those figures; analog fidelity is not required
//! (see `DESIGN.md`, substitution table).
//!
//! # Example
//!
//! ```
//! use timber_netlist::Picos;
//! use timber_wavesim::{Circuit, Logic};
//!
//! let mut c = Circuit::new();
//! let a = c.signal("a");
//! let y = c.signal("y");
//! c.inverter(a, y, Picos(10));
//! c.stimulus(a, &[(Picos(0), Logic::Zero), (Picos(100), Logic::One)]);
//! let mut sim = c.into_simulator();
//! sim.run_until(Picos(200));
//! assert_eq!(sim.value(y), Logic::Zero);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod element;
pub mod signal;
pub mod sim;
pub mod vcd;
pub mod wave;

pub use circuit::Circuit;
pub use element::{Element, Scheduled, TableGate};
pub use signal::{Logic, SigId};
pub use sim::Simulator;
pub use wave::{render_waves, Waveform, WaveformSet};

#[cfg(test)]
mod props;
