//! Boolean functions of up to six inputs, represented as truth tables.
//!
//! A [`LogicFn`] packs the output column of a truth table into a `u64`:
//! bit `i` holds the output for the input assignment whose binary encoding
//! is `i` (input 0 is the least significant bit). Six inputs suffice for
//! every cell in the standard library; wider functions are built
//! structurally from gates.

use std::fmt;

/// Maximum number of inputs a [`LogicFn`] can describe.
pub const MAX_INPUTS: usize = 6;

/// A boolean function of `arity` inputs stored as a truth table.
///
/// # Example
///
/// ```
/// use timber_netlist::LogicFn;
///
/// let nand = LogicFn::nand(2);
/// assert!(nand.eval(&[false, false]));
/// assert!(nand.eval(&[true, false]));
/// assert!(!nand.eval(&[true, true]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicFn {
    arity: u8,
    table: u64,
}

impl LogicFn {
    /// Builds a function from an explicit truth table.
    ///
    /// Bit `i` of `table` is the output for input assignment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `arity > 6` or if `table` has bits set beyond the
    /// `2^arity` meaningful positions.
    pub fn from_table(arity: usize, table: u64) -> LogicFn {
        assert!(arity <= MAX_INPUTS, "LogicFn supports at most 6 inputs");
        let rows = 1u64 << arity;
        if rows < 64 {
            assert_eq!(table >> rows, 0, "truth table has bits beyond 2^arity rows");
        }
        LogicFn {
            arity: arity as u8,
            table,
        }
    }

    /// Builds a function by evaluating a closure on every input row.
    ///
    /// # Panics
    ///
    /// Panics if `arity > 6`.
    pub fn from_fn(arity: usize, f: impl Fn(&[bool]) -> bool) -> LogicFn {
        assert!(arity <= MAX_INPUTS, "LogicFn supports at most 6 inputs");
        let mut table = 0u64;
        let mut row_inputs = [false; MAX_INPUTS];
        for row in 0..(1u64 << arity) {
            for (bit, slot) in row_inputs.iter_mut().enumerate().take(arity) {
                *slot = (row >> bit) & 1 == 1;
            }
            if f(&row_inputs[..arity]) {
                table |= 1 << row;
            }
        }
        LogicFn {
            arity: arity as u8,
            table,
        }
    }

    /// The constant-0 function of the given arity.
    pub fn constant(arity: usize, value: bool) -> LogicFn {
        LogicFn::from_fn(arity, |_| value)
    }

    /// Identity buffer (1 input).
    pub fn buffer() -> LogicFn {
        LogicFn::from_table(1, 0b10)
    }

    /// Inverter (1 input).
    pub fn inverter() -> LogicFn {
        LogicFn::from_table(1, 0b01)
    }

    /// N-input AND.
    pub fn and(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| v.iter().all(|&b| b))
    }

    /// N-input OR.
    pub fn or(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| v.iter().any(|&b| b))
    }

    /// N-input NAND.
    pub fn nand(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| !v.iter().all(|&b| b))
    }

    /// N-input NOR.
    pub fn nor(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| !v.iter().any(|&b| b))
    }

    /// N-input XOR (odd parity).
    pub fn xor(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| v.iter().filter(|&&b| b).count() % 2 == 1)
    }

    /// N-input XNOR (even parity).
    pub fn xnor(arity: usize) -> LogicFn {
        LogicFn::from_fn(arity, |v| v.iter().filter(|&&b| b).count() % 2 == 0)
    }

    /// 2:1 multiplexer; inputs are `[a, b, sel]`, output is `a` when
    /// `sel` is false and `b` when `sel` is true.
    pub fn mux2() -> LogicFn {
        LogicFn::from_fn(3, |v| if v[2] { v[1] } else { v[0] })
    }

    /// AND-OR-INVERT 2-1: `!((a & b) | c)` with inputs `[a, b, c]`.
    pub fn aoi21() -> LogicFn {
        LogicFn::from_fn(3, |v| !((v[0] && v[1]) || v[2]))
    }

    /// OR-AND-INVERT 2-1: `!((a | b) & c)` with inputs `[a, b, c]`.
    pub fn oai21() -> LogicFn {
        LogicFn::from_fn(3, |v| !((v[0] || v[1]) && v[2]))
    }

    /// Full-adder sum: `a ^ b ^ cin` with inputs `[a, b, cin]`.
    pub fn fa_sum() -> LogicFn {
        LogicFn::xor(3)
    }

    /// Full-adder carry: majority of `[a, b, cin]`.
    pub fn fa_carry() -> LogicFn {
        LogicFn::from_fn(3, |v| (v[0] as u8 + v[1] as u8 + v[2] as u8) >= 2)
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Raw truth table (bit `i` = output for input row `i`).
    pub fn table(&self) -> u64 {
        self.table
    }

    /// Evaluates the function on a slice of input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "input count must match function arity"
        );
        let mut row = 0u64;
        for (bit, &value) in inputs.iter().enumerate() {
            if value {
                row |= 1 << bit;
            }
        }
        (self.table >> row) & 1 == 1
    }

    /// True when flipping input `index` can change the output for at
    /// least one assignment of the other inputs (the input is not a
    /// don't-care).
    pub fn depends_on(&self, index: usize) -> bool {
        assert!(index < self.arity(), "input index out of range");
        let rows = 1u64 << self.arity;
        for row in 0..rows {
            let sibling = row ^ (1 << index);
            if (self.table >> row) & 1 != (self.table >> sibling) & 1 {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for LogicFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn/{}:{:#x}", self.arity, self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_match_expectations() {
        let and2 = LogicFn::and(2);
        assert!(!and2.eval(&[false, false]));
        assert!(!and2.eval(&[true, false]));
        assert!(and2.eval(&[true, true]));

        let nor2 = LogicFn::nor(2);
        assert!(nor2.eval(&[false, false]));
        assert!(!nor2.eval(&[true, false]));

        let xor3 = LogicFn::xor(3);
        assert!(xor3.eval(&[true, false, false]));
        assert!(!xor3.eval(&[true, true, false]));
        assert!(xor3.eval(&[true, true, true]));
    }

    #[test]
    fn mux2_selects_correct_input() {
        let m = LogicFn::mux2();
        assert!(m.eval(&[true, false, false])); // sel=0 -> a
        assert!(!m.eval(&[true, false, true])); // sel=1 -> b
        assert!(m.eval(&[false, true, true]));
    }

    #[test]
    fn aoi_oai_match_formula() {
        let aoi = LogicFn::aoi21();
        let oai = LogicFn::oai21();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(aoi.eval(&[a, b, c]), !((a && b) || c));
                    assert_eq!(oai.eval(&[a, b, c]), !((a || b) && c));
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let s = LogicFn::fa_sum();
        let c = LogicFn::fa_carry();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let total = a as u8 + b as u8 + cin as u8;
                    assert_eq!(s.eval(&[a, b, cin]), total % 2 == 1);
                    assert_eq!(c.eval(&[a, b, cin]), total >= 2);
                }
            }
        }
    }

    #[test]
    fn depends_on_detects_dont_cares() {
        // f(a, b) = a: output ignores b.
        let f = LogicFn::from_fn(2, |v| v[0]);
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        let k = LogicFn::constant(2, true);
        assert!(!k.depends_on(0));
        assert!(!k.depends_on(1));
    }

    #[test]
    fn inverter_and_buffer() {
        assert!(LogicFn::inverter().eval(&[false]));
        assert!(!LogicFn::inverter().eval(&[true]));
        assert!(LogicFn::buffer().eval(&[true]));
        assert!(!LogicFn::buffer().eval(&[false]));
    }

    #[test]
    #[should_panic(expected = "at most 6 inputs")]
    fn arity_limit_enforced() {
        let _ = LogicFn::and(7);
    }

    #[test]
    #[should_panic(expected = "input count must match")]
    fn eval_checks_input_count() {
        LogicFn::and(2).eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "bits beyond")]
    fn from_table_rejects_excess_bits() {
        let _ = LogicFn::from_table(1, 0b100);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LogicFn::and(2).to_string().is_empty());
    }
}
