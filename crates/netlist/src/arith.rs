//! Arithmetic circuit generators: realistic datapath blocks with
//! well-understood critical-path structure.
//!
//! These complement the random generators in [`crate::gen`]: a
//! Kogge–Stone adder (logarithmic-depth carry tree — the "fast" block
//! whose paths bunch just under the clock), an array multiplier (deep
//! quadratic structure — the classic speed-path generator), and a small
//! ALU that muxes between them (mixed path profile). All are verified
//! bit-exactly against integer arithmetic by the test suite.

use crate::cell::CellLibrary;
use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist, NetlistBuilder};

/// Builds an `n`-bit Kogge–Stone adder with registered inputs and
/// outputs.
///
/// Depth grows as `log2(n)` prefix levels, so for the same width its
/// critical path is far shorter than the ripple adder's — useful for
/// mixed-criticality designs.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction (cannot occur with the
/// standard library).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn kogge_stone_adder(library: &CellLibrary, n: usize) -> Result<Netlist, NetlistError> {
    assert!(n > 0, "adder width must be positive");
    let mut b = NetlistBuilder::new(format!("ks{n}"), library);
    let mut a_bits = Vec::with_capacity(n);
    let mut b_bits = Vec::with_capacity(n);
    for i in 0..n {
        let ai = b.input(&format!("a{i}"));
        let bi = b.input(&format!("b{i}"));
        a_bits.push(b.flop(&format!("ra{i}"), ai));
        b_bits.push(b.flop(&format!("rb{i}"), bi));
    }

    // Pre-processing: generate/propagate per bit.
    let mut g: Vec<NetId> = Vec::with_capacity(n);
    let mut p: Vec<NetId> = Vec::with_capacity(n);
    for i in 0..n {
        g.push(b.gate("and2", &[a_bits[i], b_bits[i]])?);
        p.push(b.gate("xor2", &[a_bits[i], b_bits[i]])?);
    }

    // Prefix tree: (g, p) o (g', p') = (g | (p & g'), p & p').
    //
    // The group-propagate combine is only materialised where a later
    // level actually consumes it; the sums use the per-bit p from
    // pre-processing, so the last level (and some low indices) would
    // otherwise be dead logic.
    let mut dists = Vec::new();
    let mut d = 1usize;
    while d < n {
        dists.push(d);
        d *= 2;
    }
    let levels = dists.len();
    let mut needed_p = vec![vec![false; n]; levels];
    for l in (0..levels.saturating_sub(1)).rev() {
        let next_d = dists[l + 1];
        for i in 0..n {
            let passthrough = i < next_d && needed_p[l + 1][i];
            let t_operand = i >= next_d;
            let combine_right = i + next_d < n && needed_p[l + 1][i + next_d];
            needed_p[l][i] = passthrough || t_operand || combine_right;
        }
    }

    let mut g_lvl = g.clone();
    let mut p_lvl = p.clone();
    for (lvl, &dist) in dists.iter().enumerate() {
        let mut g_next = g_lvl.clone();
        let mut p_next = p_lvl.clone();
        for i in dist..n {
            let t = b.gate("and2", &[p_lvl[i], g_lvl[i - dist]])?;
            g_next[i] = b.gate("or2", &[g_lvl[i], t])?;
            if needed_p[lvl][i] {
                p_next[i] = b.gate("and2", &[p_lvl[i], p_lvl[i - dist]])?;
            }
        }
        g_lvl = g_next;
        p_lvl = p_next;
    }

    // Post-processing: sum_i = p_i ^ carry_{i-1}; carry_{i-1} = G_{i-1}.
    for i in 0..n {
        let sum = if i == 0 {
            // No carry-in.
            p[0]
        } else {
            b.gate("xor2", &[p[i], g_lvl[i - 1]])?
        };
        let q = b.flop(&format!("rs{i}"), sum);
        b.output(&format!("s{i}"), q);
    }
    let qc = b.flop("rcout", g_lvl[n - 1]);
    b.output("cout", qc);
    b.finish()
}

/// Builds an `n × n` array multiplier with registered inputs and a
/// registered `2n`-bit product.
///
/// The carry-save array gives a critical path of ~`2n` full-adder
/// stages — the deepest block in the suite and the canonical source of
/// speed paths in real datapaths.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(library: &CellLibrary, n: usize) -> Result<Netlist, NetlistError> {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = NetlistBuilder::new(format!("mul{n}"), library);
    let mut a_bits = Vec::with_capacity(n);
    let mut b_bits = Vec::with_capacity(n);
    for i in 0..n {
        let ai = b.input(&format!("a{i}"));
        a_bits.push(b.flop(&format!("ra{i}"), ai));
    }
    for i in 0..n {
        let bi = b.input(&format!("b{i}"));
        b_bits.push(b.flop(&format!("rb{i}"), bi));
    }

    // Partial products pp[i][j] = a_i & b_j.
    let mut pp = vec![vec![None::<NetId>; n]; n];
    for (i, &ai) in a_bits.iter().enumerate() {
        for (j, &bj) in b_bits.iter().enumerate() {
            pp[i][j] = Some(b.gate("and2", &[ai, bj])?);
        }
    }

    // Row-by-row carry-save accumulation.
    // `acc[k]` holds the current sum bit for product bit k.
    let mut product = Vec::with_capacity(2 * n);
    let mut acc: Vec<Option<NetId>> = (0..n).map(|j| pp[0][j]).collect();
    product.push(acc[0].expect("pp exists")); // product bit 0
    acc.remove(0);
    acc.push(None); // weight-aligned for the next row

    for row in pp.iter().take(n).skip(1) {
        let mut carry: Option<NetId> = None;
        let mut next_acc: Vec<Option<NetId>> = Vec::with_capacity(n);
        for j in 0..n {
            let addend = row[j];
            let current = acc[j];
            let (sum, new_carry) = match (current, addend, carry) {
                (Some(x), Some(y), Some(c)) => {
                    let s = b.gate("fa_sum", &[x, y, c])?;
                    let co = b.gate("fa_carry", &[x, y, c])?;
                    (Some(s), Some(co))
                }
                (Some(x), Some(y), None) => {
                    let s = b.gate("xor2", &[x, y])?;
                    let co = b.gate("and2", &[x, y])?;
                    (Some(s), Some(co))
                }
                (Some(x), None, Some(c)) | (None, Some(x), Some(c)) => {
                    let s = b.gate("xor2", &[x, c])?;
                    let co = b.gate("and2", &[x, c])?;
                    (Some(s), Some(co))
                }
                (Some(x), None, None) | (None, Some(x), None) => (Some(x), None),
                (None, None, Some(c)) => (Some(c), None),
                (None, None, None) => (None, None),
            };
            next_acc.push(sum);
            carry = new_carry;
        }
        // The low bit of this row is final.
        product.push(next_acc[0].expect("row low bit exists"));
        next_acc.remove(0);
        next_acc.push(carry);
        acc = next_acc;
    }
    // Remaining accumulator bits are the high product bits.
    product.extend(acc.into_iter().flatten());
    // Pad with constant-0 nets if the top carry never materialised.
    while product.len() < 2 * n {
        let zero = {
            let a0 = a_bits[0];
            let na0 = b.gate("inv", &[a0])?;
            b.gate("and2", &[a0, na0])?
        };
        product.push(zero);
    }

    for (k, &net) in product.iter().enumerate() {
        let q = b.flop(&format!("rp{k}"), net);
        b.output(&format!("p{k}"), q);
    }
    b.finish()
}

/// Operations of the [`alu`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `a + b` (ripple core).
    Add,
    /// `a & b`.
    And,
    /// `a ^ b`.
    Xor,
}

impl AluOp {
    /// The `(op0, op1)` opcode bits driving the ALU's select inputs:
    /// `op1` chooses logic-vs-add, `op0` chooses xor-vs-and.
    pub fn encoding(self) -> (bool, bool) {
        match self {
            AluOp::Add => (false, false),
            AluOp::And => (false, true),
            AluOp::Xor => (true, true),
        }
    }

    /// Evaluates the operation on `width`-bit operands (modulo 2^width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 63.
    pub fn apply(self, a: u64, b: u64, width: u32) -> u64 {
        assert!(width > 0 && width < 64, "width must be in 1..=63");
        let mask = (1u64 << width) - 1;
        match self {
            AluOp::Add => a.wrapping_add(b) & mask,
            AluOp::And => a & b & mask,
            AluOp::Xor => (a ^ b) & mask,
        }
    }
}

/// Builds an `n`-bit three-function ALU (add / and / xor) selected by a
/// registered 2-bit opcode, with registered operands and result.
///
/// The mux tree after the function units creates the mixed path profile
/// typical of execute stages: the adder dominates timing while the
/// logical ops finish early.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu(library: &CellLibrary, n: usize) -> Result<Netlist, NetlistError> {
    assert!(n > 0, "alu width must be positive");
    let mut b = NetlistBuilder::new(format!("alu{n}"), library);
    let mut a_bits = Vec::with_capacity(n);
    let mut b_bits = Vec::with_capacity(n);
    for i in 0..n {
        let ai = b.input(&format!("a{i}"));
        let bi = b.input(&format!("b{i}"));
        a_bits.push(b.flop(&format!("ra{i}"), ai));
        b_bits.push(b.flop(&format!("rb{i}"), bi));
    }
    let op0_pi = b.input("op0");
    let op1_pi = b.input("op1");
    let op0 = b.flop("rop0", op0_pi);
    let op1 = b.flop("rop1", op1_pi);

    // Adder core (ripple). The result is mod 2^n, so the carry out of
    // the top bit is never built — it would be dead logic.
    let mut carry: Option<NetId> = None;
    let mut add_bits = Vec::with_capacity(n);
    for i in 0..n {
        let s = match carry {
            None => b.gate("xor2", &[a_bits[i], b_bits[i]])?,
            Some(cin) => b.gate("fa_sum", &[a_bits[i], b_bits[i], cin])?,
        };
        carry = if i + 1 < n {
            Some(match carry {
                None => b.gate("and2", &[a_bits[i], b_bits[i]])?,
                Some(cin) => b.gate("fa_carry", &[a_bits[i], b_bits[i], cin])?,
            })
        } else {
            None
        };
        add_bits.push(s);
    }

    // Logical units and the result mux: op1 ? (op0 ? xor : and) : add.
    for i in 0..n {
        let and_i = b.gate("and2", &[a_bits[i], b_bits[i]])?;
        let xor_i = b.gate("xor2", &[a_bits[i], b_bits[i]])?;
        let logic_i = b.gate("mux2", &[and_i, xor_i, op0])?;
        let res_i = b.gate("mux2", &[add_bits[i], logic_i, op1])?;
        let q = b.flop(&format!("rr{i}"), res_i);
        b.output(&format!("r{i}"), q);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn drive_bits(ev: &mut Evaluator<'_>, pis: &[NetId], value: u64) {
        for (i, &pi) in pis.iter().enumerate() {
            ev.set_input(pi, (value >> i) & 1 == 1);
        }
    }

    fn read_bits(out: &[bool]) -> u64 {
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn kogge_stone_adds_exhaustively_at_4_bits() {
        let lib = CellLibrary::standard();
        let nl = kogge_stone_adder(&lib, 4).unwrap();
        let pis = nl.primary_inputs().to_vec();
        let mut ev = Evaluator::new(&nl);
        for a in 0u64..16 {
            for bb in 0u64..16 {
                // Inputs interleave a_i, b_i.
                for i in 0..4 {
                    ev.set_input(pis[2 * i], (a >> i) & 1 == 1);
                    ev.set_input(pis[2 * i + 1], (bb >> i) & 1 == 1);
                }
                ev.settle();
                ev.clock(); // capture operands
                ev.clock(); // capture result
                let got = read_bits(&ev.outputs());
                assert_eq!(got, a + bb, "{a} + {bb}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        let lib = CellLibrary::standard();
        let ks = kogge_stone_adder(&lib, 16).unwrap();
        let rca = crate::gen::ripple_carry_adder(&lib, 16).unwrap();
        let depth = |nl: &Netlist| {
            crate::graph::levelize(nl)
                .unwrap()
                .into_iter()
                .max()
                .unwrap_or(0)
        };
        assert!(
            depth(&ks) < depth(&rca),
            "KS depth {} must beat RCA depth {}",
            depth(&ks),
            depth(&rca)
        );
    }

    #[test]
    fn multiplier_matches_integer_multiplication() {
        let lib = CellLibrary::standard();
        let nl = array_multiplier(&lib, 4).unwrap();
        let pis = nl.primary_inputs().to_vec();
        // Inputs: a0..a3 then b0..b3.
        let mut ev = Evaluator::new(&nl);
        for a in 0u64..16 {
            for bb in 0u64..16 {
                drive_bits(&mut ev, &pis[..4], a);
                drive_bits(&mut ev, &pis[4..8], bb);
                ev.settle();
                ev.clock();
                ev.clock();
                let got = read_bits(&ev.outputs());
                assert_eq!(got, a * bb, "{a} * {bb}");
            }
        }
    }

    #[test]
    fn multiplier_is_the_deepest_block() {
        let lib = CellLibrary::standard();
        let mul = array_multiplier(&lib, 8).unwrap();
        let ks = kogge_stone_adder(&lib, 8).unwrap();
        let depth = |nl: &Netlist| {
            crate::graph::levelize(nl)
                .unwrap()
                .into_iter()
                .max()
                .unwrap_or(0)
        };
        assert!(depth(&mul) > 2 * depth(&ks));
    }

    #[test]
    fn alu_computes_all_three_ops() {
        let lib = CellLibrary::standard();
        let nl = alu(&lib, 4).unwrap();
        let pis = nl.primary_inputs().to_vec();
        // Inputs interleave a_i, b_i; then op0, op1.
        let mut ev = Evaluator::new(&nl);
        for op in [AluOp::Add, AluOp::And, AluOp::Xor] {
            let (op0, op1) = op.encoding();
            for a in [0u64, 3, 9, 15] {
                for bb in [0u64, 5, 12, 15] {
                    for i in 0..4 {
                        ev.set_input(pis[2 * i], (a >> i) & 1 == 1);
                        ev.set_input(pis[2 * i + 1], (bb >> i) & 1 == 1);
                    }
                    ev.set_input(pis[8], op0);
                    ev.set_input(pis[9], op1);
                    ev.settle();
                    ev.clock();
                    ev.clock();
                    let got = read_bits(&ev.outputs());
                    assert_eq!(got, op.apply(a, bb, 4), "op={op:?} {a},{bb}");
                }
            }
        }
    }

    #[test]
    fn aluop_apply_matches_semantics() {
        assert_eq!(AluOp::Add.apply(15, 1, 4), 0); // wraps mod 16
        assert_eq!(AluOp::And.apply(0b1100, 0b1010, 4), 0b1000);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010, 4), 0b0110);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=63")]
    fn aluop_apply_validates_width() {
        let _ = AluOp::Add.apply(1, 1, 0);
    }

    #[test]
    fn blocks_have_expected_interface_sizes() {
        let lib = CellLibrary::standard();
        let ks = kogge_stone_adder(&lib, 8).unwrap();
        assert_eq!(ks.primary_outputs().len(), 9); // 8 sum + cout
        let mul = array_multiplier(&lib, 4).unwrap();
        assert_eq!(mul.primary_outputs().len(), 8); // 2n product bits
        let alu8 = alu(&lib, 8).unwrap();
        assert_eq!(alu8.primary_outputs().len(), 8);
    }
}
