//! Property-based tests (proptest) for the netlist layer.

#![cfg(test)]

use proptest::prelude::*;

use crate::cell::CellLibrary;
use crate::eval::Evaluator;
use crate::gen::{random_dag, RandomDagSpec};
use crate::graph::{fanin_cone, levelize, topo_order};
use crate::logic::LogicFn;
use crate::units::Picos;

proptest! {
    /// A truth table survives the from_table -> eval -> rebuild loop.
    #[test]
    fn logicfn_table_roundtrip(arity in 1usize..=4, bits in any::<u64>()) {
        let rows = 1u64 << arity;
        let mask = if rows == 64 { u64::MAX } else { (1 << rows) - 1 };
        let table = bits & mask;
        let f = LogicFn::from_table(arity, table);
        let rebuilt = LogicFn::from_fn(arity, |v| f.eval(v));
        prop_assert_eq!(rebuilt.table(), table);
        prop_assert_eq!(rebuilt.arity(), arity);
    }

    /// `depends_on` is exactly "exists an input pair differing only in
    /// that bit with different outputs".
    #[test]
    fn depends_on_matches_definition(arity in 1usize..=4, bits in any::<u64>()) {
        let rows = 1u64 << arity;
        let mask = if rows == 64 { u64::MAX } else { (1 << rows) - 1 };
        let f = LogicFn::from_table(arity, bits & mask);
        for i in 0..arity {
            let mut found = false;
            'outer: for row in 0..rows {
                let sib = row ^ (1 << i);
                let at = |r: u64| (f.table() >> r) & 1 == 1;
                if at(row) != at(sib) {
                    found = true;
                    break 'outer;
                }
            }
            prop_assert_eq!(f.depends_on(i), found);
        }
    }

    /// Every generated random DAG is valid: acyclic, levelizable, and
    /// functionally evaluable without panics.
    #[test]
    fn random_dag_is_always_well_formed(
        seed in 0u64..200,
        gates in 10usize..150,
        bias in 0.0f64..0.95,
    ) {
        let lib = CellLibrary::standard();
        let spec = RandomDagSpec { inputs: 6, outputs: 6, gates, depth_bias: bias, seed };
        let nl = random_dag(&lib, &spec).unwrap();
        prop_assert_eq!(nl.instance_count(), gates);
        let order = topo_order(&nl).unwrap();
        prop_assert_eq!(order.len(), gates);
        let levels = levelize(&nl).unwrap();
        prop_assert_eq!(levels.len(), gates);
        // Evaluation runs and is deterministic.
        let mut ev = Evaluator::new(&nl);
        for (i, &pi) in nl.primary_inputs().to_vec().iter().enumerate() {
            ev.set_input(pi, i % 2 == 0);
        }
        ev.settle();
        ev.clock();
        ev.clock();
        let a = ev.outputs();
        ev.settle();
        let b = ev.outputs();
        prop_assert_eq!(a, b);
    }

    /// Fanin cones only contain flops that can actually reach the
    /// endpoint: every cone member's Q has a forward path to the D.
    #[test]
    fn fanin_cones_are_sound(seed in 0u64..50) {
        let lib = CellLibrary::standard();
        let nl = random_dag(&lib, &RandomDagSpec {
            inputs: 6, outputs: 6, gates: 60, depth_bias: 0.6, seed,
        }).unwrap();
        for f in nl.flop_ids() {
            let cone = fanin_cone(&nl, f);
            for g in cone {
                let fwd = crate::graph::fanout_cone(&nl, g);
                prop_assert!(fwd.contains(&f),
                    "cone member {g} must reach {f} forward");
            }
        }
    }

    /// Picos scaling by a factor in (0, 4] is monotone in the factor.
    #[test]
    fn picos_scale_monotone(ps in 0i64..1_000_000, f1 in 0.01f64..4.0, f2 in 0.01f64..4.0) {
        let p = Picos(ps);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(p.scale(lo) <= p.scale(hi));
    }

    /// Saturating arithmetic identities.
    #[test]
    fn picos_arith_identities(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (x, y) = (Picos(a), Picos(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x - y, -(y - x));
        prop_assert_eq!(x.max(y).min(x.min(y)), x.min(y));
    }
}
