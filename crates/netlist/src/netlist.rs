//! Structural netlist representation and builder.
//!
//! A [`Netlist`] is a flattened gate-level design: combinational cell
//! [`Instance`]s, edge-triggered [`SeqElement`]s (flip-flops) forming
//! stage boundaries, and [`Net`]s connecting them. Validation guarantees
//! every net has exactly one driver and the combinational logic is
//! acyclic, so downstream analyses (STA, simulation) need no defensive
//! checks.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{CellId, CellLibrary};
use crate::error::NetlistError;

/// Index of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a combinational instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a sequential element (flip-flop) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlopId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

impl fmt::Display for FlopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flop#{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The net is a primary input of the design.
    PrimaryInput,
    /// The net is driven by the output pin of a combinational instance.
    Instance(InstId),
    /// The net is the Q output of a flip-flop.
    FlopQ(FlopId),
}

/// A place a net fans out to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Input pin `pin` of a combinational instance.
    InstancePin(InstId, usize),
    /// The D input of a flip-flop.
    FlopD(FlopId),
    /// A primary output of the design.
    PrimaryOutput,
}

/// A named wire in the design.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<Driver>,
    fanout: Vec<Sink>,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net's single driver. Always `Some` on a validated [`Netlist`].
    pub fn driver(&self) -> Option<Driver> {
        self.driver
    }

    /// All sinks (loads) of the net.
    pub fn fanout(&self) -> &[Sink] {
        &self.fanout
    }
}

/// A combinational cell instance.
#[derive(Debug, Clone)]
pub struct Instance {
    name: String,
    cell: CellId,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Instance {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Library cell implemented by this instance.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// An edge-triggered flip-flop: the stage-boundary element the TIMBER
/// technique replaces.
#[derive(Debug, Clone)]
pub struct SeqElement {
    name: String,
    d: NetId,
    q: NetId,
}

impl SeqElement {
    /// Flop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Data input net.
    pub fn d(&self) -> NetId {
        self.d
    }

    /// Data output net.
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// A validated gate-level netlist.
///
/// Construct with [`NetlistBuilder`]; a successfully built netlist
/// guarantees:
///
/// * every net has exactly one driver,
/// * all instance pins are connected,
/// * the combinational logic between flop boundaries is acyclic.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    library: CellLibrary,
    nets: Vec<Net>,
    instances: Vec<Instance>,
    flops: Vec<SeqElement>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library the design is mapped to.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of combinational instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of flip-flops.
    pub fn flop_count(&self) -> usize {
        self.flops.len()
    }

    /// Net accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Instance accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// Flip-flop accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn flop(&self, id: FlopId) -> &SeqElement {
        &self.flops[id.0 as usize]
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs as `(name, net)` pairs.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.primary_outputs
    }

    /// Iterates over all instance ids.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.instances.len() as u32).map(InstId)
    }

    /// Iterates over all flop ids.
    pub fn flop_ids(&self) -> impl Iterator<Item = FlopId> {
        (0..self.flops.len() as u32).map(FlopId)
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Total combinational cell area of the design.
    pub fn combinational_area(&self) -> crate::units::Area {
        self.instances
            .iter()
            .map(|i| self.library.cell(i.cell).area())
            .sum()
    }
}

/// Incrementally constructs a [`Netlist`].
///
/// # Example
///
/// ```
/// use timber_netlist::{CellLibrary, NetlistBuilder};
///
/// # fn main() -> Result<(), timber_netlist::NetlistError> {
/// let lib = CellLibrary::standard();
/// let mut b = NetlistBuilder::new("half_adder", &lib);
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate("xor2", &[a, c])?;
/// let carry = b.gate("and2", &[a, c])?;
/// b.output("sum", sum);
/// b.output("carry", carry);
/// let nl = b.finish()?;
/// assert_eq!(nl.primary_outputs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder<'lib> {
    name: String,
    library: &'lib CellLibrary,
    nets: Vec<Net>,
    instances: Vec<Instance>,
    flops: Vec<SeqElement>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<(String, NetId)>,
    net_names: HashMap<String, u32>,
}

impl<'lib> NetlistBuilder<'lib> {
    /// Starts a new design mapped to `library`.
    pub fn new(name: impl Into<String>, library: &'lib CellLibrary) -> NetlistBuilder<'lib> {
        NetlistBuilder {
            name: name.into(),
            library,
            nets: Vec::new(),
            instances: Vec::new(),
            flops: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            net_names: HashMap::new(),
        }
    }

    fn fresh_net(&mut self, base: &str, driver: Option<Driver>) -> NetId {
        let count = self.net_names.entry(base.to_owned()).or_insert(0);
        let name = if *count == 0 {
            base.to_owned()
        } else {
            format!("{base}${count}")
        };
        *count += 1;
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name,
            driver,
            fanout: Vec::new(),
        });
        id
    }

    /// Declares a primary input and returns its net.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.fresh_net(name, Some(Driver::PrimaryInput));
        self.primary_inputs.push(id);
        id
    }

    /// Marks `net` as a primary output named `name`.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.primary_outputs.push((name.to_owned(), net));
        self.nets[net.0 as usize].fanout.push(Sink::PrimaryOutput);
    }

    /// Instantiates a library cell driving a fresh net, which is returned.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if `cell_name` is not in the
    /// library and [`NetlistError::ArityMismatch`] if the wrong number of
    /// input nets is supplied.
    pub fn gate(&mut self, cell_name: &str, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        let cell_id = self
            .library
            .find(cell_name)
            .ok_or_else(|| NetlistError::UnknownCell(cell_name.to_owned()))?;
        let cell = self.library.cell(cell_id);
        if cell.num_inputs() != inputs.len() {
            return Err(NetlistError::ArityMismatch {
                cell: cell_name.to_owned(),
                expected: cell.num_inputs(),
                got: inputs.len(),
            });
        }
        let inst_id = InstId(self.instances.len() as u32);
        let out = self.fresh_net(
            &format!("{cell_name}_{}", inst_id.0),
            Some(Driver::Instance(inst_id)),
        );
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.0 as usize]
                .fanout
                .push(Sink::InstancePin(inst_id, pin));
        }
        self.instances.push(Instance {
            name: format!("u{}", inst_id.0),
            cell: cell_id,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Adds a flip-flop whose D input is `d`; returns the Q net.
    pub fn flop(&mut self, name: &str, d: NetId) -> NetId {
        let flop_id = FlopId(self.flops.len() as u32);
        let q = self.fresh_net(&format!("{name}_q"), Some(Driver::FlopQ(flop_id)));
        self.nets[d.0 as usize].fanout.push(Sink::FlopD(flop_id));
        self.flops.push(SeqElement {
            name: name.to_owned(),
            d,
            q,
        });
        q
    }

    /// Creates a named net with *no* driver.
    ///
    /// A floating net only survives [`finish_unchecked`]
    /// (`finish` rejects it); it exists so `timber-lint` tests can
    /// inject the disconnected-input defect class deliberately.
    ///
    /// [`finish_unchecked`]: NetlistBuilder::finish_unchecked
    pub fn floating_net(&mut self, name: &str) -> NetId {
        self.fresh_net(name, None)
    }

    /// Re-routes input pin `pin` of instance `inst` to `net`, updating
    /// fanout lists on both the old and the new net.
    ///
    /// Splicing an input onto a net created *later* (e.g. a downstream
    /// gate's output) creates a combinational back-edge; the resulting
    /// design is rejected by [`finish`](NetlistBuilder::finish) but can
    /// be materialised with
    /// [`finish_unchecked`](NetlistBuilder::finish_unchecked) for lint
    /// testing.
    ///
    /// # Panics
    ///
    /// Panics if `inst`, `pin`, or `net` is out of range.
    pub fn rewire_input(&mut self, inst: InstId, pin: usize, net: NetId) {
        let old = self.instances[inst.0 as usize].inputs[pin];
        self.nets[old.0 as usize]
            .fanout
            .retain(|s| *s != Sink::InstancePin(inst, pin));
        self.instances[inst.0 as usize].inputs[pin] = net;
        self.nets[net.0 as usize]
            .fanout
            .push(Sink::InstancePin(inst, pin));
    }

    /// Points instance `inst`'s output at an existing `net` without
    /// disturbing that net's recorded driver — after this, two cells
    /// claim to drive `net` (and `inst`'s original output net is left
    /// driverless). This is the doubled-driver defect class
    /// `timber-lint` detects; the result only survives
    /// [`finish_unchecked`](NetlistBuilder::finish_unchecked).
    ///
    /// # Panics
    ///
    /// Panics if `inst` or `net` is out of range.
    pub fn rewire_output(&mut self, inst: InstId, net: NetId) {
        assert!(net.0 < self.nets.len() as u32, "net out of range");
        let old = self.instances[inst.0 as usize].output;
        // The old output net keeps its name but loses its driver.
        self.nets[old.0 as usize].driver = None;
        self.instances[inst.0 as usize].output = net;
    }

    /// Validates and returns the finished netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenNet`] if a net has no driver and
    /// [`NetlistError::CombinationalLoop`] if the combinational logic is
    /// cyclic. (Multiple drivers cannot arise through this builder, whose
    /// `gate`/`flop`/`input` methods each create fresh driven nets, but
    /// the invariant is documented on [`Netlist`].)
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(NetlistError::UndrivenNet(net.name.clone()));
            }
        }
        let netlist = self.finish_unchecked();
        // Cycle check: Kahn's algorithm over combinational instances only.
        crate::graph::topo_order(&netlist)?;
        Ok(netlist)
    }

    /// Returns the netlist *without* validating it.
    ///
    /// The result may violate every invariant [`finish`] guarantees:
    /// floating nets, doubled drivers, combinational loops. Downstream
    /// analyses that assume a validated netlist (the evaluator, STA)
    /// may panic on it; `timber-lint`'s structural checks are the
    /// intended consumer, reporting each defect as a diagnostic instead.
    ///
    /// [`finish`]: NetlistBuilder::finish
    pub fn finish_unchecked(self) -> Netlist {
        Netlist {
            name: self.name,
            library: self.library.clone(),
            nets: self.nets,
            instances: self.instances,
            flops: self.flops,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::standard()
    }

    #[test]
    fn build_simple_combinational_design() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let n = b.gate("nand2", &[a, c]).unwrap();
        let y = b.gate("inv", &[n]).unwrap();
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert_eq!(nl.instance_count(), 2);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 1);
        assert_eq!(nl.net(a).fanout().len(), 1);
        assert_eq!(nl.net(n).driver(), Some(Driver::Instance(InstId(0))));
    }

    #[test]
    fn flop_creates_q_net_and_records_d_sink() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let inv = b.gate("inv", &[a]).unwrap();
        let q = b.flop("r0", inv);
        b.output("y", q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.flop_count(), 1);
        let f = nl.flop(FlopId(0));
        assert_eq!(f.d(), inv);
        assert_eq!(f.q(), q);
        assert!(nl.net(inv).fanout().contains(&Sink::FlopD(FlopId(0))));
        assert_eq!(nl.net(q).driver(), Some(Driver::FlopQ(FlopId(0))));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        assert_eq!(
            b.gate("frob", &[a]).unwrap_err(),
            NetlistError::UnknownCell("frob".into())
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let err = b.gate("nand2", &[a]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::ArityMismatch {
                cell: "nand2".into(),
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn net_names_are_uniquified() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("inv", &[a]).unwrap();
        b.output("x", x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert_ne!(nl.net(x).name(), nl.net(y).name());
    }

    #[test]
    fn combinational_area_sums_cells() {
        let lib = lib();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap(); // area 1.0
        let y = b.gate("xor2", &[a, x]).unwrap(); // area 3.0
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert!((nl.combinational_area().0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(NetId(3).to_string(), "net#3");
        assert_eq!(InstId(4).to_string(), "inst#4");
        assert_eq!(FlopId(5).to_string(), "flop#5");
    }
}
