//! Structural Verilog export.
//!
//! Writes a gate-level netlist as a single synthesizable Verilog
//! module: one instance per combinational cell (named after the library
//! cell), one `timber_dff` instance per flip-flop, with sanitised net
//! names. This lets generated designs flow into external tools (or a
//! real synthesis run) for independent cross-checking.

use std::fmt::Write as _;

use crate::netlist::{Driver, Netlist};

/// Sanitises a net/instance name into a Verilog identifier.
fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, 'n');
    }
    out
}

/// Serialises a netlist as structural Verilog.
///
/// The module is named after the design; cells are instantiated by
/// their library name with positional ports `(out, in0, in1, …)`;
/// flip-flops instantiate `timber_dff(q, d, clk)`.
///
/// # Example
///
/// ```
/// use timber_netlist::{ripple_carry_adder, verilog, CellLibrary};
///
/// # fn main() -> Result<(), timber_netlist::NetlistError> {
/// let lib = CellLibrary::standard();
/// let nl = ripple_carry_adder(&lib, 2)?;
/// let v = verilog::to_verilog(&nl);
/// assert!(v.contains("module rca2"));
/// assert!(v.contains("timber_dff"));
/// # Ok(())
/// # }
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let module = ident(netlist.name());

    // Port list: primary inputs, primary outputs, clock.
    let inputs: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|&n| ident(netlist.net(n).name()))
        .collect();
    let outputs: Vec<String> = netlist
        .primary_outputs()
        .iter()
        .map(|(name, _)| ident(name))
        .collect();
    let mut ports = vec!["clk".to_owned()];
    ports.extend(inputs.iter().cloned());
    ports.extend(outputs.iter().cloned());
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));
    let _ = writeln!(out, "  input clk;");
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }

    // Wire declarations for all internal nets.
    for net_id in netlist.net_ids() {
        let name = ident(netlist.net(net_id).name());
        if !inputs.contains(&name) {
            let _ = writeln!(out, "  wire {name};");
        }
    }

    // Combinational instances.
    for inst_id in netlist.instance_ids() {
        let inst = netlist.instance(inst_id);
        let cell = netlist.library().cell(inst.cell());
        let mut pins = vec![ident(netlist.net(inst.output()).name())];
        pins.extend(inst.inputs().iter().map(|&n| ident(netlist.net(n).name())));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.name(),
            ident(inst.name()),
            pins.join(", ")
        );
    }

    // Sequential elements.
    for flop_id in netlist.flop_ids() {
        let flop = netlist.flop(flop_id);
        let _ = writeln!(
            out,
            "  timber_dff {} ({}, {}, clk);",
            ident(flop.name()),
            ident(netlist.net(flop.q()).name()),
            ident(netlist.net(flop.d()).name()),
        );
    }

    // Output assigns.
    for (name, net) in netlist.primary_outputs() {
        let port = ident(name);
        let src = ident(netlist.net(*net).name());
        if port != src {
            let _ = writeln!(out, "  assign {port} = {src};");
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Returns true when the net is a primary input (used by the writer to
/// skip re-declaring ports as wires).
#[allow(dead_code)]
fn is_primary_input(netlist: &Netlist, net: crate::netlist::NetId) -> bool {
    matches!(netlist.net(net).driver(), Some(Driver::PrimaryInput))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn ident_sanitises_names() {
        assert_eq!(ident("a"), "a");
        assert_eq!(ident("nand2_3$1"), "nand2_3_1");
        assert_eq!(ident("0bad"), "n0bad");
        assert_eq!(ident(""), "n");
    }

    #[test]
    fn module_structure_is_complete() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 4).unwrap();
        let v = to_verilog(&nl);
        assert!(v.starts_with("module rca4 (clk, "));
        assert!(v.trim_end().ends_with("endmodule"));
        // One instantiation line per gate and flop.
        assert_eq!(v.matches("fa_sum ").count(), 4);
        assert_eq!(v.matches("fa_carry ").count(), 4);
        assert_eq!(v.matches("timber_dff ").count(), nl.flop_count());
        // Ports declared.
        assert!(v.contains("  input a0;"));
        assert!(v.contains("  output s3;"));
        assert!(v.contains("  input clk;"));
    }

    #[test]
    fn output_assigns_connect_ports() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let y = b.gate("inv", &[a]).unwrap();
        b.output("yout", y);
        let nl = b.finish().unwrap();
        let v = to_verilog(&nl);
        assert!(v.contains("assign yout = "), "{v}");
        assert!(v.contains("inv u0 ("));
    }

    #[test]
    fn export_is_deterministic() {
        let lib = CellLibrary::standard();
        let a = to_verilog(&ripple_carry_adder(&lib, 3).unwrap());
        let b = to_verilog(&ripple_carry_adder(&lib, 3).unwrap());
        assert_eq!(a, b);
    }
}
