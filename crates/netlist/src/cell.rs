//! Standard-cell library: logic function, timing arcs, area and power.
//!
//! Delay, area and power numbers are relative values representative of a
//! 45 nm-class library (the paper's industrial library is proprietary).
//! Absolute calibration does not matter for the reproduction: every
//! result in the paper is reported relative to a base design, and our
//! experiments inherit that normalisation.

use std::collections::HashMap;
use std::fmt;

use crate::logic::LogicFn;
use crate::units::{Area, Picos};

/// Index of a cell in a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A pin-to-pin timing arc: the delay from a transition on one input pin
/// to the resulting transition on the output pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingArc {
    /// Delay for a rising output transition.
    pub rise: Picos,
    /// Delay for a falling output transition.
    pub fall: Picos,
}

impl TimingArc {
    /// An arc with equal rise and fall delay.
    pub fn symmetric(delay: Picos) -> TimingArc {
        TimingArc {
            rise: delay,
            fall: delay,
        }
    }

    /// Worst (largest) of the rise/fall delays; used for max-delay STA.
    pub fn worst(&self) -> Picos {
        self.rise.max(self.fall)
    }

    /// Best (smallest) of the rise/fall delays; used for hold analysis.
    pub fn best(&self) -> Picos {
        self.rise.min(self.fall)
    }
}

/// A combinational standard cell.
#[derive(Debug, Clone)]
pub struct Cell {
    name: String,
    function: LogicFn,
    arcs: Vec<TimingArc>,
    area: Area,
    /// Static leakage power, relative units.
    leakage: f64,
    /// Energy per output transition, relative units.
    switch_energy: f64,
}

impl Cell {
    /// Creates a cell.
    ///
    /// # Panics
    ///
    /// Panics if the number of arcs does not match the function arity.
    pub fn new(
        name: impl Into<String>,
        function: LogicFn,
        arcs: Vec<TimingArc>,
        area: Area,
        leakage: f64,
        switch_energy: f64,
    ) -> Cell {
        let name = name.into();
        assert_eq!(
            arcs.len(),
            function.arity(),
            "cell {name}: one timing arc per input pin required"
        );
        Cell {
            name,
            function,
            arcs,
            area,
            leakage,
            switch_energy,
        }
    }

    /// Cell name, e.g. `"nand2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boolean function computed by the cell.
    pub fn function(&self) -> LogicFn {
        self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.function.arity()
    }

    /// Timing arc from input pin `pin` to the output.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn arc(&self, pin: usize) -> TimingArc {
        self.arcs[pin]
    }

    /// All timing arcs, indexed by input pin.
    pub fn arcs(&self) -> &[TimingArc] {
        &self.arcs
    }

    /// Cell area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Static leakage power (relative units).
    pub fn leakage(&self) -> f64 {
        self.leakage
    }

    /// Energy per output transition (relative units).
    pub fn switch_energy(&self) -> f64 {
        self.switch_energy
    }

    /// Worst-case (max over pins) input-to-output delay.
    pub fn worst_delay(&self) -> Picos {
        self.arcs
            .iter()
            .map(TimingArc::worst)
            .fold(Picos::ZERO, Picos::max)
    }
}

/// A library of combinational cells addressed by name or [`CellId`].
///
/// # Example
///
/// ```
/// use timber_netlist::CellLibrary;
///
/// let lib = CellLibrary::standard();
/// let nand2 = lib.find("nand2").expect("standard cell present");
/// assert_eq!(lib.cell(nand2).num_inputs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> CellLibrary {
        CellLibrary {
            cells: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The built-in standard library used across the reproduction.
    ///
    /// Delays are loosely calibrated so a FO4 inverter is ~15 ps,
    /// matching a 45 nm-class process; a two-input NAND is ~20 ps.
    pub fn standard() -> CellLibrary {
        let mut lib = CellLibrary::new();
        let sym = |d: i64| TimingArc::symmetric(Picos(d));
        let skew = |r: i64, f: i64| TimingArc {
            rise: Picos(r),
            fall: Picos(f),
        };

        lib.add(Cell::new(
            "inv",
            LogicFn::inverter(),
            vec![skew(14, 16)],
            Area(1.0),
            0.02,
            0.08,
        ));
        lib.add(Cell::new(
            "buf",
            LogicFn::buffer(),
            vec![sym(28)],
            Area(1.5),
            0.03,
            0.12,
        ));
        lib.add(Cell::new(
            "nand2",
            LogicFn::nand(2),
            vec![skew(18, 22), skew(20, 24)],
            Area(1.5),
            0.04,
            0.14,
        ));
        lib.add(Cell::new(
            "nor2",
            LogicFn::nor(2),
            vec![skew(24, 18), skew(26, 20)],
            Area(1.5),
            0.04,
            0.14,
        ));
        lib.add(Cell::new(
            "and2",
            LogicFn::and(2),
            vec![sym(34), sym(36)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "or2",
            LogicFn::or(2),
            vec![sym(36), sym(38)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "nand3",
            LogicFn::nand(3),
            vec![sym(26), sym(28), sym(30)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "nor3",
            LogicFn::nor(3),
            vec![sym(32), sym(34), sym(36)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "xor2",
            LogicFn::xor(2),
            vec![sym(42), sym(44)],
            Area(3.0),
            0.07,
            0.26,
        ));
        lib.add(Cell::new(
            "xnor2",
            LogicFn::xnor(2),
            vec![sym(42), sym(44)],
            Area(3.0),
            0.07,
            0.26,
        ));
        lib.add(Cell::new(
            "mux2",
            LogicFn::mux2(),
            vec![sym(36), sym(36), sym(44)],
            Area(3.0),
            0.07,
            0.24,
        ));
        lib.add(Cell::new(
            "aoi21",
            LogicFn::aoi21(),
            vec![sym(28), sym(30), sym(24)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "oai21",
            LogicFn::oai21(),
            vec![sym(28), sym(30), sym(24)],
            Area(2.0),
            0.05,
            0.18,
        ));
        lib.add(Cell::new(
            "fa_sum",
            LogicFn::fa_sum(),
            vec![sym(58), sym(60), sym(52)],
            Area(4.5),
            0.10,
            0.40,
        ));
        lib.add(Cell::new(
            "fa_carry",
            LogicFn::fa_carry(),
            vec![sym(44), sym(46), sym(38)],
            Area(4.0),
            0.09,
            0.36,
        ));
        lib
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        let prev = self.by_name.insert(cell.name().to_owned(), id);
        assert!(
            prev.is_none(),
            "duplicate cell name {:?} in library",
            cell.name()
        );
        self.cells.push(cell);
        id
    }

    /// Looks up a cell id by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Returns the cell for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(CellId, &Cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_expected_cells() {
        let lib = CellLibrary::standard();
        for name in [
            "inv", "buf", "nand2", "nor2", "and2", "or2", "nand3", "nor3", "xor2", "xnor2", "mux2",
            "aoi21", "oai21", "fa_sum", "fa_carry",
        ] {
            assert!(lib.find(name).is_some(), "missing {name}");
        }
        assert_eq!(lib.len(), 15);
        assert!(!lib.is_empty());
    }

    #[test]
    fn cells_have_one_arc_per_input() {
        let lib = CellLibrary::standard();
        for (_, cell) in lib.iter() {
            assert_eq!(cell.arcs().len(), cell.num_inputs());
            assert!(cell.area().0 > 0.0);
            assert!(cell.leakage() > 0.0);
            assert!(cell.switch_energy() > 0.0);
        }
    }

    #[test]
    fn arc_worst_and_best() {
        let arc = TimingArc {
            rise: Picos(10),
            fall: Picos(14),
        };
        assert_eq!(arc.worst(), Picos(14));
        assert_eq!(arc.best(), Picos(10));
        let s = TimingArc::symmetric(Picos(7));
        assert_eq!(s.worst(), Picos(7));
        assert_eq!(s.best(), Picos(7));
    }

    #[test]
    fn worst_delay_is_max_over_pins() {
        let lib = CellLibrary::standard();
        let nand2 = lib.cell(lib.find("nand2").unwrap());
        assert_eq!(nand2.worst_delay(), Picos(24));
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_names_rejected() {
        let mut lib = CellLibrary::standard();
        lib.add(Cell::new(
            "inv",
            LogicFn::inverter(),
            vec![TimingArc::symmetric(Picos(1))],
            Area(1.0),
            0.01,
            0.01,
        ));
    }

    #[test]
    #[should_panic(expected = "one timing arc per input pin")]
    fn arc_count_validated() {
        let _ = Cell::new(
            "bad",
            LogicFn::and(2),
            vec![TimingArc::symmetric(Picos(1))],
            Area(1.0),
            0.01,
            0.01,
        );
    }

    #[test]
    fn find_unknown_returns_none() {
        assert!(CellLibrary::standard().find("quantum_ff").is_none());
    }
}
