//! Synthetic circuit generators.
//!
//! The paper's evaluation vehicle is a proprietary industrial processor.
//! These generators produce structurally realistic substitutes: arithmetic
//! blocks with long carry chains (deep critical paths), seeded random
//! logic DAGs, and multi-stage pipelined datapaths whose per-stage depth
//! profile is controllable so the `timber-proc` crate can shape critical-
//! path distributions like the paper's Fig. 1.
//!
//! All randomness is seeded; the same spec always yields the same netlist.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cell::CellLibrary;
use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist, NetlistBuilder};

/// Builds an `n`-bit ripple-carry adder with registered inputs and
/// outputs.
///
/// The carry chain gives the block a single dominant critical path of
/// depth ~`n`, a good proxy for an execution-stage speed path.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction (cannot occur with the
/// standard library).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(library: &CellLibrary, n: usize) -> Result<Netlist, NetlistError> {
    assert!(n > 0, "adder width must be positive");
    let mut b = NetlistBuilder::new(format!("rca{n}"), library);
    let mut a_bits = Vec::with_capacity(n);
    let mut b_bits = Vec::with_capacity(n);
    for i in 0..n {
        let ai = b.input(&format!("a{i}"));
        let bi = b.input(&format!("b{i}"));
        a_bits.push(b.flop(&format!("ra{i}"), ai));
        b_bits.push(b.flop(&format!("rb{i}"), bi));
    }
    let cin = b.input("cin");
    let mut carry = b.flop("rcin", cin);
    for i in 0..n {
        let sum = b.gate("fa_sum", &[a_bits[i], b_bits[i], carry])?;
        let cout = b.gate("fa_carry", &[a_bits[i], b_bits[i], carry])?;
        let qs = b.flop(&format!("rs{i}"), sum);
        b.output(&format!("s{i}"), qs);
        carry = cout;
    }
    let qc = b.flop("rcout", carry);
    b.output("cout", qc);
    b.finish()
}

/// Parameters for [`random_dag`].
#[derive(Debug, Clone)]
pub struct RandomDagSpec {
    /// Number of registered inputs feeding the logic cloud.
    pub inputs: usize,
    /// Number of registered outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// How strongly gate inputs prefer recent (deep) nets over early
    /// (shallow) ones, in `[0, 1)`. Higher values yield deeper circuits.
    pub depth_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDagSpec {
    fn default() -> RandomDagSpec {
        RandomDagSpec {
            inputs: 16,
            outputs: 16,
            gates: 200,
            depth_bias: 0.7,
            seed: 1,
        }
    }
}

/// Generates a seeded random combinational DAG between an input register
/// bank and an output register bank.
///
/// Gates are drawn from the 2-input subset of the standard library; each
/// gate's fanins are sampled with a bias toward recently created nets so
/// that `depth_bias` controls logic depth. Gate outputs that end up
/// neither consumed by another gate nor registered among the `outputs`
/// deepest nets are captured by extra observer registers (`robs*`), so
/// the cloud never contains dead logic.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if any count is zero or `depth_bias` is outside `[0, 1)`.
pub fn random_dag(library: &CellLibrary, spec: &RandomDagSpec) -> Result<Netlist, NetlistError> {
    assert!(spec.inputs > 0 && spec.outputs > 0 && spec.gates > 0);
    assert!((0.0..1.0).contains(&spec.depth_bias), "depth_bias in [0,1)");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let gate_menu = ["nand2", "nor2", "and2", "or2", "xor2", "xnor2"];
    let mut b = NetlistBuilder::new(format!("rand_dag_{}", spec.seed), library);

    let mut pool: Vec<NetId> = Vec::with_capacity(spec.inputs + spec.gates);
    for i in 0..spec.inputs {
        let pi = b.input(&format!("in{i}"));
        pool.push(b.flop(&format!("ri{i}"), pi));
    }
    let mut consumed = vec![false; spec.inputs + spec.gates];
    for _ in 0..spec.gates {
        let cell = gate_menu[rng.gen_range(0..gate_menu.len())];
        let x = pick_biased(&mut rng, pool.len(), spec.depth_bias);
        let y = pick_biased(&mut rng, pool.len(), spec.depth_bias);
        consumed[x] = true;
        consumed[y] = true;
        let out = b.gate(cell, &[pool[x], pool[y]])?;
        pool.push(out);
    }
    // Register the deepest nets as outputs so the critical path is observable.
    let captured_from = pool.len().saturating_sub(spec.outputs);
    for (i, &net) in pool.iter().rev().take(spec.outputs).enumerate() {
        let q = b.flop(&format!("ro{i}"), net);
        b.output(&format!("out{i}"), q);
    }
    // Capture orphan gate outputs with observer registers so no gate is
    // dead logic.
    let mut obs = 0usize;
    for idx in spec.inputs..captured_from {
        if !consumed[idx] {
            let q = b.flop(&format!("robs{obs}"), pool[idx]);
            b.output(&format!("obs{obs}"), q);
            obs += 1;
        }
    }
    b.finish()
}

/// Samples an index in `[0, len)` biased toward the end of the range.
///
/// With bias `p`, repeatedly keeps only the last `(1-p)` fraction of the
/// range with probability `p`, geometrically concentrating picks near the
/// most recently created nets.
fn pick_biased(rng: &mut StdRng, len: usize, bias: f64) -> usize {
    debug_assert!(len > 0);
    let mut lo = 0usize;
    while len - lo > 1 && rng.gen_bool(bias) {
        lo += (len - lo) / 2;
    }
    rng.gen_range(lo..len)
}

/// Parameters for [`pipelined_datapath`].
#[derive(Debug, Clone)]
pub struct DatapathSpec {
    /// Number of pipeline stages.
    pub stages: usize,
    /// Register bits per stage boundary.
    pub width: usize,
    /// Gates in each stage's logic cloud, one entry per stage.
    pub stage_gates: Vec<usize>,
    /// Depth bias for each stage's cloud (see [`RandomDagSpec`]).
    pub stage_depth_bias: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl DatapathSpec {
    /// A uniform datapath: every stage has the same size and bias.
    pub fn uniform(
        stages: usize,
        width: usize,
        gates: usize,
        bias: f64,
        seed: u64,
    ) -> DatapathSpec {
        DatapathSpec {
            stages,
            width,
            stage_gates: vec![gates; stages],
            stage_depth_bias: vec![bias; stages],
            seed,
        }
    }
}

/// Generates a multi-stage pipelined datapath: `stages + 1` register
/// banks with a random logic cloud between consecutive banks.
///
/// Per-stage gate counts and depth biases let callers shape which stage
/// boundaries terminate (and originate) deep paths — the structural knob
/// behind the Fig. 1 reproduction. Cloud gates whose outputs are neither
/// consumed downstream nor captured by the next bank get observer
/// registers (`r_obs*`), so no stage contains dead logic.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `stages == 0`, `width == 0`, or the per-stage vectors do not
/// have `stages` entries.
pub fn pipelined_datapath(
    library: &CellLibrary,
    spec: &DatapathSpec,
) -> Result<Netlist, NetlistError> {
    assert!(spec.stages > 0 && spec.width > 0);
    assert_eq!(
        spec.stage_gates.len(),
        spec.stages,
        "one gate count per stage"
    );
    assert_eq!(
        spec.stage_depth_bias.len(),
        spec.stages,
        "one depth bias per stage"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let gate_menu = ["nand2", "nor2", "and2", "or2", "xor2", "aoi21"];
    let mut b = NetlistBuilder::new(format!("datapath_{}", spec.seed), library);

    // Input register bank.
    let mut bank: Vec<NetId> = (0..spec.width)
        .map(|i| {
            let pi = b.input(&format!("in{i}"));
            b.flop(&format!("r0_{i}"), pi)
        })
        .collect();

    for stage in 0..spec.stages {
        let mut pool = bank.clone();
        let mut consumed = vec![false; pool.len() + spec.stage_gates[stage]];
        for _ in 0..spec.stage_gates[stage] {
            let cell = gate_menu[rng.gen_range(0..gate_menu.len())];
            let arity = library
                .cell(library.find(cell).expect("standard cell"))
                .num_inputs();
            let mut ins = Vec::with_capacity(arity);
            for _ in 0..arity {
                let idx = pick_biased(&mut rng, pool.len(), spec.stage_depth_bias[stage]);
                consumed[idx] = true;
                ins.push(pool[idx]);
            }
            let out = b.gate(cell, &ins)?;
            pool.push(out);
        }
        // Next register bank captures the deepest `width` nets of the cloud.
        let captured_from = pool.len().saturating_sub(spec.width);
        let next: Vec<NetId> = pool
            .iter()
            .rev()
            .take(spec.width)
            .enumerate()
            .map(|(i, &net)| b.flop(&format!("r{}_{i}", stage + 1), net))
            .collect();
        // Capture orphan gate outputs (neither consumed downstream in
        // this cloud nor registered) so no stage contains dead logic.
        let mut obs = 0usize;
        for idx in spec.width..captured_from {
            if !consumed[idx] {
                let q = b.flop(&format!("r_obs{}_{obs}", stage + 1), pool[idx]);
                b.output(&format!("obs{}_{obs}", stage + 1), q);
                obs += 1;
            }
        }
        bank = next;
    }
    for (i, &q) in bank.iter().enumerate() {
        b.output(&format!("out{i}"), q);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    #[test]
    fn rca_adds_correctly() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 4).unwrap();
        let mut ev = Evaluator::new(&nl);
        // Drive a=0b1011 (11), b=0b0110 (6), cin=1 -> 18 = 0b10010.
        let pis = nl.primary_inputs().to_vec();
        // Inputs are interleaved a0,b0,a1,b1,...,cin.
        let a_val = 0b1011u32;
        let b_val = 0b0110u32;
        for i in 0..4 {
            ev.set_input(pis[2 * i], (a_val >> i) & 1 == 1);
            ev.set_input(pis[2 * i + 1], (b_val >> i) & 1 == 1);
        }
        ev.set_input(pis[8], true);
        ev.settle();
        ev.clock(); // registers capture inputs
        ev.clock(); // output registers capture sum
        let out = ev.outputs();
        let mut result = 0u32;
        for (i, &bit) in out.iter().enumerate() {
            if bit {
                result |= 1 << i;
            }
        }
        assert_eq!(result, 11 + 6 + 1);
    }

    #[test]
    fn rca_is_deterministic_in_structure() {
        let lib = CellLibrary::standard();
        let n1 = ripple_carry_adder(&lib, 8).unwrap();
        let n2 = ripple_carry_adder(&lib, 8).unwrap();
        assert_eq!(n1.instance_count(), n2.instance_count());
        assert_eq!(n1.flop_count(), n2.flop_count());
        // 8 FA cells x 2 gates.
        assert_eq!(n1.instance_count(), 16);
        // 8a + 8b + cin + 8 sum + cout registers.
        assert_eq!(n1.flop_count(), 26);
    }

    #[test]
    fn random_dag_is_seed_deterministic() {
        let lib = CellLibrary::standard();
        let spec = RandomDagSpec {
            gates: 50,
            ..RandomDagSpec::default()
        };
        let a = random_dag(&lib, &spec).unwrap();
        let b = random_dag(&lib, &spec).unwrap();
        assert_eq!(a.instance_count(), b.instance_count());
        let cells_a: Vec<_> = a.instance_ids().map(|i| a.instance(i).cell()).collect();
        let cells_b: Vec<_> = b.instance_ids().map(|i| b.instance(i).cell()).collect();
        assert_eq!(cells_a, cells_b);
    }

    #[test]
    fn random_dag_seed_changes_structure() {
        let lib = CellLibrary::standard();
        let s1 = RandomDagSpec {
            seed: 1,
            ..RandomDagSpec::default()
        };
        let s2 = RandomDagSpec {
            seed: 2,
            ..RandomDagSpec::default()
        };
        let a = random_dag(&lib, &s1).unwrap();
        let b = random_dag(&lib, &s2).unwrap();
        let cells_a: Vec<_> = a.instance_ids().map(|i| a.instance(i).cell()).collect();
        let cells_b: Vec<_> = b.instance_ids().map(|i| b.instance(i).cell()).collect();
        assert_ne!(cells_a, cells_b);
    }

    #[test]
    fn datapath_has_expected_register_banks() {
        let lib = CellLibrary::standard();
        let spec = DatapathSpec::uniform(3, 8, 60, 0.6, 7);
        let nl = pipelined_datapath(&lib, &spec).unwrap();
        // Gate count is exact; flops are 4 banks x 8 bits plus one
        // observer register (with its own primary output) per orphan
        // gate, so those counts move together.
        assert_eq!(nl.instance_count(), 180);
        assert!(nl.flop_count() >= 32);
        assert!(nl.primary_outputs().len() >= 8);
        assert_eq!(
            nl.flop_count() - 32,
            nl.primary_outputs().len() - 8,
            "each observer register adds exactly one primary output"
        );
    }

    #[test]
    fn datapath_depth_bias_monotonically_deepens() {
        let lib = CellLibrary::standard();
        let shallow = pipelined_datapath(&lib, &DatapathSpec::uniform(1, 8, 150, 0.1, 3)).unwrap();
        let deep = pipelined_datapath(&lib, &DatapathSpec::uniform(1, 8, 150, 0.9, 3)).unwrap();
        let max_level = |nl: &Netlist| {
            crate::graph::levelize(nl)
                .unwrap()
                .into_iter()
                .max()
                .unwrap_or(0)
        };
        assert!(
            max_level(&deep) > max_level(&shallow),
            "higher bias must produce deeper logic ({} vs {})",
            max_level(&deep),
            max_level(&shallow)
        );
    }

    #[test]
    #[should_panic(expected = "one gate count per stage")]
    fn datapath_spec_validated() {
        let lib = CellLibrary::standard();
        let spec = DatapathSpec {
            stages: 2,
            width: 4,
            stage_gates: vec![10],
            stage_depth_bias: vec![0.5, 0.5],
            seed: 0,
        };
        let _ = pipelined_datapath(&lib, &spec);
    }
}
