//! Graph utilities over a [`Netlist`]: topological ordering, levelization
//! and cone extraction.
//!
//! Sequential elements (flip-flops) cut the graph: a flop's Q output is a
//! timing *startpoint* and its D input a timing *endpoint*, so traversals
//! here never cross a flop. This matches how the paper reasons about
//! per-stage critical paths and multi-stage error propagation.

use std::collections::VecDeque;

use crate::error::NetlistError;
use crate::netlist::{Driver, FlopId, InstId, NetId, Netlist, Sink};

/// Returns combinational instances in topological order (fanin before
/// fanout).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] if the combinational logic
/// contains a cycle.
pub fn topo_order(netlist: &Netlist) -> Result<Vec<InstId>, NetlistError> {
    let n = netlist.instance_count();
    // In-degree counts only edges coming from other combinational
    // instances; primary inputs and flop Q pins are sources.
    let mut indegree = vec![0usize; n];
    for inst_id in netlist.instance_ids() {
        for &input in netlist.instance(inst_id).inputs() {
            if let Some(Driver::Instance(_)) = netlist.net(input).driver() {
                indegree[inst_id.0 as usize] += 1;
            }
        }
    }
    let mut queue: VecDeque<InstId> = (0..n as u32)
        .map(InstId)
        .filter(|i| indegree[i.0 as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(inst) = queue.pop_front() {
        order.push(inst);
        for sink in netlist.net(netlist.instance(inst).output()).fanout() {
            if let Sink::InstancePin(succ, _) = *sink {
                let d = &mut indegree[succ.0 as usize];
                *d -= 1;
                if *d == 0 {
                    queue.push_back(succ);
                }
            }
        }
    }
    if order.len() != n {
        // Find a net on the cycle for the error message.
        let on_cycle = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| {
                netlist
                    .net(netlist.instance(InstId(i as u32)).output())
                    .name()
                    .to_owned()
            })
            .unwrap_or_default();
        return Err(NetlistError::CombinationalLoop(on_cycle));
    }
    Ok(order)
}

/// Assigns each combinational instance a logic level: sources (fed only
/// by primary inputs / flop outputs) are level 0; otherwise
/// `1 + max(level of combinational fanins)`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] if the logic is cyclic.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>, NetlistError> {
    let order = topo_order(netlist)?;
    let mut level = vec![0usize; netlist.instance_count()];
    for inst in order {
        let mut max_in = None;
        for &input in netlist.instance(inst).inputs() {
            if let Some(Driver::Instance(pred)) = netlist.net(input).driver() {
                max_in = Some(max_in.unwrap_or(0).max(level[pred.0 as usize] + 1));
            }
        }
        level[inst.0 as usize] = max_in.unwrap_or(0);
    }
    Ok(level)
}

/// The set of flip-flops in the combinational fanin cone of flop `end`'s
/// D input, i.e. the flops whose Q can reach `end.d` without crossing
/// another flop.
///
/// This is exactly the set of TIMBER flip-flops whose error-relay select
/// outputs must be consolidated at `end` (paper §5.1, Fig. 4).
pub fn fanin_cone(netlist: &Netlist, end: FlopId) -> Vec<FlopId> {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut result = Vec::new();
    let mut stack = vec![netlist.flop(end).d()];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        match netlist.net(net).driver() {
            Some(Driver::FlopQ(flop)) => result.push(flop),
            Some(Driver::Instance(inst)) => {
                stack.extend(netlist.instance(inst).inputs().iter().copied());
            }
            Some(Driver::PrimaryInput) | None => {}
        }
    }
    result.sort();
    result.dedup();
    result
}

/// The set of flip-flops in the combinational fanout cone of flop
/// `start`'s Q output: flops whose D is reachable from `start.q` without
/// crossing another flop.
pub fn fanout_cone(netlist: &Netlist, start: FlopId) -> Vec<FlopId> {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut result = Vec::new();
    let mut stack = vec![netlist.flop(start).q()];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        for sink in netlist.net(net).fanout() {
            match *sink {
                Sink::FlopD(flop) => result.push(flop),
                Sink::InstancePin(inst, _) => {
                    stack.push(netlist.instance(inst).output());
                }
                Sink::PrimaryOutput => {}
            }
        }
    }
    result.sort();
    result.dedup();
    result
}

/// Transitive combinational fanin of a net, returned as `(instances,
/// nets)` reachable backwards from `from` without crossing flops.
pub fn transitive_fanin(netlist: &Netlist, from: NetId) -> (Vec<InstId>, Vec<NetId>) {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut insts = Vec::new();
    let mut nets = Vec::new();
    let mut stack = vec![from];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        nets.push(net);
        if let Some(Driver::Instance(inst)) = netlist.net(net).driver() {
            insts.push(inst);
            stack.extend(netlist.instance(inst).inputs().iter().copied());
        }
    }
    insts.sort();
    insts.dedup();
    nets.sort();
    nets.dedup();
    (insts, nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::netlist::NetlistBuilder;

    /// Two-stage pipeline:
    ///   a -> inv -> f0 -> inv -> f1 -> out
    ///   b ----------^ (via nand with inv output)
    fn two_stage() -> Netlist {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("two_stage", &lib);
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("nand2", &[x, bb]).unwrap();
        let q0 = b.flop("f0", y);
        let z = b.gate("inv", &[q0]).unwrap();
        let q1 = b.flop("f1", z);
        b.output("out", q1);
        b.finish().unwrap()
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = two_stage();
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), nl.instance_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, inst) in order.iter().enumerate() {
                p[inst.0 as usize] = i;
            }
            p
        };
        // inv(u0) feeds nand2(u1): u0 must come first.
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn levelize_assigns_increasing_levels() {
        let nl = two_stage();
        let levels = levelize(&nl).unwrap();
        assert_eq!(levels[0], 0); // inv fed by PI
        assert_eq!(levels[1], 1); // nand fed by inv
        assert_eq!(levels[2], 0); // stage-2 inv fed by flop Q
    }

    #[test]
    fn fanin_cone_stops_at_flops() {
        let nl = two_stage();
        // f1's D comes from inv(q0): cone = {f0}.
        assert_eq!(fanin_cone(&nl, FlopId(1)), vec![FlopId(0)]);
        // f0's D comes only from primary inputs: empty cone.
        assert!(fanin_cone(&nl, FlopId(0)).is_empty());
    }

    #[test]
    fn fanout_cone_stops_at_flops() {
        let nl = two_stage();
        assert_eq!(fanout_cone(&nl, FlopId(0)), vec![FlopId(1)]);
        assert!(fanout_cone(&nl, FlopId(1)).is_empty());
    }

    #[test]
    fn transitive_fanin_collects_logic() {
        let nl = two_stage();
        let d0 = nl.flop(FlopId(0)).d();
        let (insts, nets) = transitive_fanin(&nl, d0);
        assert_eq!(insts.len(), 2); // inv + nand2
        assert!(nets.len() >= 3);
    }

    #[test]
    fn diamond_reconvergence_counted_once() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("diamond", &lib);
        let a = b.input("a");
        let q0 = b.flop("src", a);
        let l = b.gate("inv", &[q0]).unwrap();
        let r = b.gate("buf", &[q0]).unwrap();
        let m = b.gate("nand2", &[l, r]).unwrap();
        let q1 = b.flop("dst", m);
        b.output("o", q1);
        let nl = b.finish().unwrap();
        assert_eq!(fanin_cone(&nl, FlopId(1)), vec![FlopId(0)]);
        assert_eq!(fanout_cone(&nl, FlopId(0)), vec![FlopId(1)]);
    }
}
