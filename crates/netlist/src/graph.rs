//! Graph utilities over a [`Netlist`]: topological ordering, levelization
//! and cone extraction.
//!
//! Sequential elements (flip-flops) cut the graph: a flop's Q output is a
//! timing *startpoint* and its D input a timing *endpoint*, so traversals
//! here never cross a flop. This matches how the paper reasons about
//! per-stage critical paths and multi-stage error propagation.

use std::collections::VecDeque;

use crate::error::NetlistError;
use crate::netlist::{Driver, FlopId, InstId, NetId, Netlist, Sink};

/// Returns combinational instances in topological order (fanin before
/// fanout).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] carrying the complete
/// path of the first loop (see [`combinational_cycles`]) if the
/// combinational logic contains a cycle.
pub fn topo_order(netlist: &Netlist) -> Result<Vec<InstId>, NetlistError> {
    let n = netlist.instance_count();
    // In-degree counts only edges coming from other combinational
    // instances; primary inputs and flop Q pins are sources.
    let mut indegree = vec![0usize; n];
    for inst_id in netlist.instance_ids() {
        for &input in netlist.instance(inst_id).inputs() {
            if let Some(Driver::Instance(_)) = netlist.net(input).driver() {
                indegree[inst_id.0 as usize] += 1;
            }
        }
    }
    let mut queue: VecDeque<InstId> = (0..n as u32)
        .map(InstId)
        .filter(|i| indegree[i.0 as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(inst) = queue.pop_front() {
        order.push(inst);
        for sink in netlist.net(netlist.instance(inst).output()).fanout() {
            if let Sink::InstancePin(succ, _) = *sink {
                let d = &mut indegree[succ.0 as usize];
                *d -= 1;
                if *d == 0 {
                    queue.push_back(succ);
                }
            }
        }
    }
    if order.len() != n {
        let cycles = combinational_cycles(netlist);
        let path = cycles
            .first()
            .map(|c| cycle_net_names(netlist, c))
            .unwrap_or_default();
        return Err(NetlistError::CombinationalLoop { path });
    }
    Ok(order)
}

/// Enumerates every combinational loop region of the netlist.
///
/// The combinational instance graph is decomposed into strongly
/// connected components (Tarjan); each component containing a cycle
/// (more than one instance, or one instance feeding itself) is reported
/// as the shortest elementary cycle inside it, found by BFS. Two loops
/// sharing any instance belong to the same component and are reported
/// once — the loop regions are disjoint, so fixing each reported cycle
/// is guaranteed to make progress on every loop in the design.
///
/// Returns one `Vec<InstId>` per loop region, instances in cycle order
/// (the last instance's output feeds the first's input). An acyclic
/// netlist yields an empty vector. Cycles are ordered by their smallest
/// member instance id, so the report is deterministic.
pub fn combinational_cycles(netlist: &Netlist) -> Vec<Vec<InstId>> {
    let n = netlist.instance_count();
    let succs = |i: usize| -> Vec<usize> {
        let mut out = Vec::new();
        for sink in netlist
            .net(netlist.instance(InstId(i as u32)).output())
            .fanout()
        {
            if let Sink::InstancePin(succ, _) = *sink {
                out.push(succ.0 as usize);
            }
        }
        out
    };

    // Iterative Tarjan SCC (recursion would overflow on deep chains).
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    // Work frames: (node, successor list, next successor position).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, succs(root), 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref adj, ref mut pos)) = frames.last_mut() {
            if *pos < adj.len() {
                let w = adj[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, succs(w), 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }

    let mut cycles: Vec<Vec<InstId>> = Vec::new();
    for comp in components {
        let is_cyclic = comp.len() > 1 || (comp.len() == 1 && succs(comp[0]).contains(&comp[0]));
        if !is_cyclic {
            continue;
        }
        let in_comp: std::collections::HashSet<usize> = comp.iter().copied().collect();
        let start = *comp.iter().min().expect("non-empty component");
        // Shortest cycle through `start` within the component: BFS from
        // each successor of `start` back to `start`.
        let mut prev = vec![UNVISITED; n];
        let mut queue = VecDeque::new();
        prev[start] = start;
        queue.push_back(start);
        let mut closed = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for w in succs(v) {
                if !in_comp.contains(&w) {
                    continue;
                }
                if w == start {
                    prev[start] = v; // remember the closing edge
                    closed = true;
                    break 'bfs;
                }
                if prev[w] == UNVISITED {
                    prev[w] = v;
                    queue.push_back(w);
                }
            }
        }
        debug_assert!(closed, "cyclic SCC must contain a cycle through start");
        let mut cycle = vec![start];
        let mut at = prev[start];
        while at != start {
            cycle.push(at);
            at = prev[at];
        }
        cycle.reverse(); // walk in edge direction: start -> ... -> start
        cycles.push(cycle.into_iter().map(|i| InstId(i as u32)).collect());
    }
    cycles.sort_by_key(|c| c.iter().min().copied());
    cycles
}

/// Output-net names of the instances on a cycle, in cycle order — the
/// human-readable form [`NetlistError::CombinationalLoop`] carries.
pub fn cycle_net_names(netlist: &Netlist, cycle: &[InstId]) -> Vec<String> {
    cycle
        .iter()
        .map(|&i| netlist.net(netlist.instance(i).output()).name().to_owned())
        .collect()
}

/// Assigns each combinational instance a logic level: sources (fed only
/// by primary inputs / flop outputs) are level 0; otherwise
/// `1 + max(level of combinational fanins)`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] if the logic is cyclic.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>, NetlistError> {
    let order = topo_order(netlist)?;
    let mut level = vec![0usize; netlist.instance_count()];
    for inst in order {
        let mut max_in = None;
        for &input in netlist.instance(inst).inputs() {
            if let Some(Driver::Instance(pred)) = netlist.net(input).driver() {
                max_in = Some(max_in.unwrap_or(0).max(level[pred.0 as usize] + 1));
            }
        }
        level[inst.0 as usize] = max_in.unwrap_or(0);
    }
    Ok(level)
}

/// The set of flip-flops in the combinational fanin cone of flop `end`'s
/// D input, i.e. the flops whose Q can reach `end.d` without crossing
/// another flop.
///
/// This is exactly the set of TIMBER flip-flops whose error-relay select
/// outputs must be consolidated at `end` (paper §5.1, Fig. 4).
pub fn fanin_cone(netlist: &Netlist, end: FlopId) -> Vec<FlopId> {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut result = Vec::new();
    let mut stack = vec![netlist.flop(end).d()];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        match netlist.net(net).driver() {
            Some(Driver::FlopQ(flop)) => result.push(flop),
            Some(Driver::Instance(inst)) => {
                stack.extend(netlist.instance(inst).inputs().iter().copied());
            }
            Some(Driver::PrimaryInput) | None => {}
        }
    }
    result.sort();
    result.dedup();
    result
}

/// The set of flip-flops in the combinational fanout cone of flop
/// `start`'s Q output: flops whose D is reachable from `start.q` without
/// crossing another flop.
pub fn fanout_cone(netlist: &Netlist, start: FlopId) -> Vec<FlopId> {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut result = Vec::new();
    let mut stack = vec![netlist.flop(start).q()];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        for sink in netlist.net(net).fanout() {
            match *sink {
                Sink::FlopD(flop) => result.push(flop),
                Sink::InstancePin(inst, _) => {
                    stack.push(netlist.instance(inst).output());
                }
                Sink::PrimaryOutput => {}
            }
        }
    }
    result.sort();
    result.dedup();
    result
}

/// Transitive combinational fanin of a net, returned as `(instances,
/// nets)` reachable backwards from `from` without crossing flops.
pub fn transitive_fanin(netlist: &Netlist, from: NetId) -> (Vec<InstId>, Vec<NetId>) {
    let mut seen_net = vec![false; netlist.net_count()];
    let mut insts = Vec::new();
    let mut nets = Vec::new();
    let mut stack = vec![from];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut seen_net[net.0 as usize], true) {
            continue;
        }
        nets.push(net);
        if let Some(Driver::Instance(inst)) = netlist.net(net).driver() {
            insts.push(inst);
            stack.extend(netlist.instance(inst).inputs().iter().copied());
        }
    }
    insts.sort();
    insts.dedup();
    nets.sort();
    nets.dedup();
    (insts, nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::netlist::NetlistBuilder;

    /// Two-stage pipeline:
    ///   a -> inv -> f0 -> inv -> f1 -> out
    ///   b ----------^ (via nand with inv output)
    fn two_stage() -> Netlist {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("two_stage", &lib);
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("nand2", &[x, bb]).unwrap();
        let q0 = b.flop("f0", y);
        let z = b.gate("inv", &[q0]).unwrap();
        let q1 = b.flop("f1", z);
        b.output("out", q1);
        b.finish().unwrap()
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = two_stage();
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), nl.instance_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, inst) in order.iter().enumerate() {
                p[inst.0 as usize] = i;
            }
            p
        };
        // inv(u0) feeds nand2(u1): u0 must come first.
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn levelize_assigns_increasing_levels() {
        let nl = two_stage();
        let levels = levelize(&nl).unwrap();
        assert_eq!(levels[0], 0); // inv fed by PI
        assert_eq!(levels[1], 1); // nand fed by inv
        assert_eq!(levels[2], 0); // stage-2 inv fed by flop Q
    }

    #[test]
    fn fanin_cone_stops_at_flops() {
        let nl = two_stage();
        // f1's D comes from inv(q0): cone = {f0}.
        assert_eq!(fanin_cone(&nl, FlopId(1)), vec![FlopId(0)]);
        // f0's D comes only from primary inputs: empty cone.
        assert!(fanin_cone(&nl, FlopId(0)).is_empty());
    }

    #[test]
    fn fanout_cone_stops_at_flops() {
        let nl = two_stage();
        assert_eq!(fanout_cone(&nl, FlopId(0)), vec![FlopId(1)]);
        assert!(fanout_cone(&nl, FlopId(1)).is_empty());
    }

    #[test]
    fn transitive_fanin_collects_logic() {
        let nl = two_stage();
        let d0 = nl.flop(FlopId(0)).d();
        let (insts, nets) = transitive_fanin(&nl, d0);
        assert_eq!(insts.len(), 2); // inv + nand2
        assert!(nets.len() >= 3);
    }

    /// Builds a netlist with a spliced back-edge: u1's second input is
    /// re-routed onto u2's output, closing the loop u1 -> u2 -> u1.
    fn looped() -> Netlist {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("looped", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap(); // u0 (not on the loop)
        let y = b.gate("nand2", &[x, a]).unwrap(); // u1
        let z = b.gate("inv", &[y]).unwrap(); // u2
        b.output("z", z);
        b.rewire_input(InstId(1), 1, z);
        b.finish_unchecked()
    }

    #[test]
    fn combinational_cycles_reports_full_loop() {
        let nl = looped();
        let cycles = combinational_cycles(&nl);
        assert_eq!(cycles.len(), 1);
        // The loop is u1 <-> u2; u0 is outside it.
        let mut members = cycles[0].clone();
        members.sort();
        assert_eq!(members, vec![InstId(1), InstId(2)]);
        // Cycle order is consistent: each instance feeds the next.
        let names = cycle_net_names(&nl, &cycles[0]);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn topo_order_error_carries_cycle_path() {
        let nl = looped();
        let err = topo_order(&nl).unwrap_err();
        match err {
            NetlistError::CombinationalLoop { path } => {
                assert_eq!(path.len(), 2);
                let msg = NetlistError::CombinationalLoop { path }.to_string();
                assert!(msg.contains("->"), "full path rendered: {msg}");
            }
            other => panic!("expected CombinationalLoop, got {other:?}"),
        }
    }

    #[test]
    fn acyclic_netlist_has_no_cycles() {
        let nl = two_stage();
        assert!(combinational_cycles(&nl).is_empty());
    }

    #[test]
    fn disjoint_loop_regions_reported_separately() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("two_loops", &lib);
        let a = b.input("a");
        // Loop 1: u0 -> u1 -> u0.
        let p = b.gate("inv", &[a]).unwrap();
        let q = b.gate("inv", &[p]).unwrap();
        b.rewire_input(InstId(0), 0, q);
        // Loop 2: u2 -> u2 via a buf chain of one.
        let r = b.gate("buf", &[a]).unwrap();
        b.rewire_input(InstId(2), 0, r);
        b.output("q", q);
        let nl = b.finish_unchecked();
        let cycles = combinational_cycles(&nl);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].len(), 2);
        assert_eq!(cycles[1], vec![InstId(2)], "self-loop reported");
    }

    #[test]
    fn diamond_reconvergence_counted_once() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("diamond", &lib);
        let a = b.input("a");
        let q0 = b.flop("src", a);
        let l = b.gate("inv", &[q0]).unwrap();
        let r = b.gate("buf", &[q0]).unwrap();
        let m = b.gate("nand2", &[l, r]).unwrap();
        let q1 = b.flop("dst", m);
        b.output("o", q1);
        let nl = b.finish().unwrap();
        assert_eq!(fanin_cone(&nl, FlopId(1)), vec![FlopId(0)]);
        assert_eq!(fanout_cone(&nl, FlopId(0)), vec![FlopId(1)]);
    }
}
