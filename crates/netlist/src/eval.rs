//! Zero-delay functional evaluation of a netlist.
//!
//! [`Evaluator`] computes steady-state net values for given primary-input
//! and flop-state assignments, and can step the clock (flops capture
//! their D values). It is the functional reference the generators and the
//! event-driven simulator are checked against.

use crate::netlist::{Driver, FlopId, InstId, NetId, Netlist};

/// Functional evaluator for a [`Netlist`].
///
/// # Example
///
/// ```
/// use timber_netlist::{CellLibrary, Evaluator, NetlistBuilder};
///
/// # fn main() -> Result<(), timber_netlist::NetlistError> {
/// let lib = CellLibrary::standard();
/// let mut b = NetlistBuilder::new("inv", &lib);
/// let a = b.input("a");
/// let y = b.gate("inv", &[a])?;
/// b.output("y", y);
/// let nl = b.finish()?;
///
/// let mut ev = Evaluator::new(&nl);
/// ev.set_input(a, true);
/// ev.settle();
/// assert!(!ev.value(y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Evaluator<'nl> {
    netlist: &'nl Netlist,
    values: Vec<bool>,
    flop_state: Vec<bool>,
    topo: Vec<InstId>,
}

impl<'nl> Evaluator<'nl> {
    /// Creates an evaluator with all inputs and flop states at 0.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop; validated
    /// netlists built via `NetlistBuilder::finish` never do. For
    /// netlists of unknown provenance (e.g. built with
    /// `NetlistBuilder::finish_unchecked`), use
    /// [`Evaluator::try_new`].
    pub fn new(netlist: &'nl Netlist) -> Evaluator<'nl> {
        Evaluator::try_new(netlist).expect("validated netlist must be acyclic")
    }

    /// Creates an evaluator, reporting a combinational loop (with its
    /// full cycle path) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::CombinationalLoop`] if the
    /// combinational logic is cyclic.
    pub fn try_new(netlist: &'nl Netlist) -> Result<Evaluator<'nl>, crate::NetlistError> {
        let topo = crate::graph::topo_order(netlist)?;
        Ok(Evaluator {
            netlist,
            values: vec![false; netlist.net_count()],
            flop_state: vec![false; netlist.flop_count()],
            topo,
        })
    }

    /// Sets a primary-input net value.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert!(
            matches!(self.netlist.net(net).driver(), Some(Driver::PrimaryInput)),
            "{net} is not a primary input"
        );
        self.values[net.0 as usize] = value;
    }

    /// Forces a flop's current state (its Q value before the next edge).
    pub fn set_flop_state(&mut self, flop: FlopId, value: bool) {
        self.flop_state[flop.0 as usize] = value;
    }

    /// Current flop state.
    pub fn flop_state(&self, flop: FlopId) -> bool {
        self.flop_state[flop.0 as usize]
    }

    /// Propagates values through the combinational logic until stable
    /// (one topological pass, since the logic is acyclic).
    pub fn settle(&mut self) {
        // Flop Q nets reflect the stored state.
        for flop_id in self.netlist.flop_ids() {
            let q = self.netlist.flop(flop_id).q();
            self.values[q.0 as usize] = self.flop_state[flop_id.0 as usize];
        }
        let mut inputs = Vec::with_capacity(6);
        for &inst_id in &self.topo {
            let inst = self.netlist.instance(inst_id);
            inputs.clear();
            inputs.extend(inst.inputs().iter().map(|&n| self.values[n.0 as usize]));
            let cell = self.netlist.library().cell(inst.cell());
            self.values[inst.output().0 as usize] = cell.function().eval(&inputs);
        }
    }

    /// Value of a net after the last [`settle`](Self::settle).
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Applies a clock edge: every flop captures its D value, then the
    /// logic re-settles.
    pub fn clock(&mut self) {
        // Capture all D values simultaneously (edge-triggered semantics).
        let captured: Vec<bool> = self
            .netlist
            .flop_ids()
            .map(|f| self.values[self.netlist.flop(f).d().0 as usize])
            .collect();
        self.flop_state = captured;
        self.settle();
    }

    /// Convenience: reads the primary outputs as a vector of bits in
    /// declaration order.
    pub fn outputs(&self) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|(_, net)| self.value(*net))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn combinational_logic_evaluates() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("maj", &lib);
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let m = b.gate("fa_carry", &[x, y, z]).unwrap();
        b.output("maj", m);
        let nl = b.finish().unwrap();
        let mut ev = Evaluator::new(&nl);
        for bits in 0u8..8 {
            let (a, c, d) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            ev.set_input(x, a);
            ev.set_input(y, c);
            ev.set_input(z, d);
            ev.settle();
            assert_eq!(ev.value(m), (a as u8 + c as u8 + d as u8) >= 2);
        }
    }

    #[test]
    fn clock_captures_d_and_propagates() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("shift", &lib);
        let a = b.input("a");
        let q0 = b.flop("f0", a);
        let q1 = b.flop("f1", q0);
        b.output("o", q1);
        let nl = b.finish().unwrap();
        let mut ev = Evaluator::new(&nl);
        ev.set_input(a, true);
        ev.settle();
        assert!(!ev.value(q0));
        ev.clock();
        assert!(ev.value(q0));
        assert!(!ev.value(q1));
        ev.clock();
        assert!(ev.value(q1));
    }

    #[test]
    fn set_flop_state_overrides_q() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let q = b.flop("f", a);
        let y = b.gate("inv", &[q]).unwrap();
        b.output("y", y);
        let nl = b.finish().unwrap();
        let mut ev = Evaluator::new(&nl);
        ev.set_flop_state(crate::netlist::FlopId(0), true);
        ev.settle();
        assert!(ev.flop_state(crate::netlist::FlopId(0)));
        assert!(!ev.value(y));
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn set_input_rejects_internal_nets() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let y = b.gate("inv", &[a]).unwrap();
        b.output("y", y);
        let nl = b.finish().unwrap();
        let mut ev = Evaluator::new(&nl);
        ev.set_input(y, true);
    }

    #[test]
    fn outputs_in_declaration_order() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let n = b.gate("inv", &[a]).unwrap();
        b.output("first", a);
        b.output("second", n);
        let nl = b.finish().unwrap();
        let mut ev = Evaluator::new(&nl);
        ev.set_input(a, true);
        ev.settle();
        assert_eq!(ev.outputs(), vec![true, false]);
    }
}
