//! Design statistics: cell-type census, area/power totals and depth
//! summaries used by reports and the overhead model.

use std::collections::BTreeMap;

use crate::netlist::Netlist;
use crate::units::Area;

/// A summary of one netlist's composition.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Instance count per cell type, sorted by cell name.
    pub cell_census: BTreeMap<String, usize>,
    /// Combinational instances.
    pub instances: usize,
    /// Flip-flops.
    pub flops: usize,
    /// Nets.
    pub nets: usize,
    /// Total combinational area.
    pub combinational_area: Area,
    /// Total static leakage of combinational cells (relative units).
    pub leakage: f64,
    /// Maximum logic depth (levels).
    pub max_depth: usize,
    /// Mean fanout of instance-driven nets.
    pub mean_fanout: f64,
}

impl NetlistStats {
    /// Measures a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop (validated
    /// netlists never do). For netlists of unknown provenance, use
    /// [`NetlistStats::try_measure`].
    pub fn measure(netlist: &Netlist) -> NetlistStats {
        NetlistStats::try_measure(netlist).expect("validated netlist is acyclic")
    }

    /// Measures a netlist, reporting a combinational loop (with its
    /// full cycle path) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::CombinationalLoop`] if the
    /// combinational logic is cyclic.
    pub fn try_measure(netlist: &Netlist) -> Result<NetlistStats, crate::NetlistError> {
        let mut census: BTreeMap<String, usize> = BTreeMap::new();
        let mut leakage = 0.0;
        let mut fanout_total = 0usize;
        for inst_id in netlist.instance_ids() {
            let inst = netlist.instance(inst_id);
            let cell = netlist.library().cell(inst.cell());
            *census.entry(cell.name().to_owned()).or_insert(0) += 1;
            leakage += cell.leakage();
            fanout_total += netlist.net(inst.output()).fanout().len();
        }
        let max_depth = crate::graph::levelize(netlist)?
            .into_iter()
            .max()
            .map(|d| d + 1)
            .unwrap_or(0);
        let instances = netlist.instance_count();
        Ok(NetlistStats {
            cell_census: census,
            instances,
            flops: netlist.flop_count(),
            nets: netlist.net_count(),
            combinational_area: netlist.combinational_area(),
            leakage,
            max_depth,
            mean_fanout: if instances == 0 {
                0.0
            } else {
                fanout_total as f64 / instances as f64
            },
        })
    }

    /// Renders a one-design summary block.
    pub fn render(&self, name: &str) -> String {
        let mut out = format!(
            "{name}: {} gates, {} flops, {} nets, area {}, depth {}, mean fanout {:.2}\n",
            self.instances,
            self.flops,
            self.nets,
            self.combinational_area,
            self.max_depth,
            self.mean_fanout
        );
        for (cell, count) in &self.cell_census {
            out.push_str(&format!("  {cell:<10} x{count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn census_counts_every_instance() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 4).unwrap();
        let stats = NetlistStats::measure(&nl);
        assert_eq!(stats.cell_census["fa_sum"], 4);
        assert_eq!(stats.cell_census["fa_carry"], 4);
        assert_eq!(stats.instances, 8);
        assert_eq!(stats.cell_census.values().sum::<usize>(), stats.instances);
        assert_eq!(stats.flops, nl.flop_count());
        assert!(stats.leakage > 0.0);
        assert!(stats.combinational_area.0 > 0.0);
    }

    #[test]
    fn depth_counts_levels_inclusively() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("chain3", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        let y = b.gate("inv", &[x]).unwrap();
        let z = b.gate("inv", &[y]).unwrap();
        b.output("z", z);
        let nl = b.finish().unwrap();
        let stats = NetlistStats::measure(&nl);
        assert_eq!(stats.max_depth, 3);
    }

    #[test]
    fn mean_fanout_counts_sinks() {
        let lib = CellLibrary::standard();
        let mut b = NetlistBuilder::new("fan", &lib);
        let a = b.input("a");
        let x = b.gate("inv", &[a]).unwrap();
        // x fans out to 3 sinks.
        let p = b.gate("buf", &[x]).unwrap();
        let q = b.gate("inv", &[x]).unwrap();
        b.output("x", x);
        b.output("p", p);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let stats = NetlistStats::measure(&nl);
        // inv(x): 3 sinks; buf(p): 1 sink (PO); inv(q): 1 sink (PO).
        assert!((stats.mean_fanout - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_cells() {
        let lib = CellLibrary::standard();
        let nl = ripple_carry_adder(&lib, 2).unwrap();
        let text = NetlistStats::measure(&nl).render("rca2");
        assert!(text.contains("rca2:"));
        assert!(text.contains("fa_sum"));
    }
}
