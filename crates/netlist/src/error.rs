//! Error types for netlist construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell name was not found in the library.
    UnknownCell(String),
    /// A gate was instantiated with the wrong number of input nets.
    ArityMismatch {
        /// Cell name.
        cell: String,
        /// Number of pins the cell has.
        expected: usize,
        /// Number of nets supplied.
        got: usize,
    },
    /// A net has no driver (it is not a primary input, a flop output, or
    /// a gate output).
    UndrivenNet(String),
    /// A net has more than one driver.
    MultiplyDrivenNet(String),
    /// The combinational logic contains a cycle.
    ///
    /// `path` lists the nets on the loop in traversal order (each net is
    /// the output of one instance on the cycle; the last net feeds the
    /// first instance again). Produced by
    /// [`crate::graph::combinational_cycles`], which enumerates every
    /// loop region; this error carries the first one.
    CombinationalLoop {
        /// Output nets of the instances on the cycle, in order.
        path: Vec<String>,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownCell(name) => write!(f, "unknown cell {name:?}"),
            NetlistError::ArityMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "cell {cell:?} expects {expected} inputs but {got} were connected"
            ),
            NetlistError::UndrivenNet(name) => write!(f, "net {name:?} has no driver"),
            NetlistError::MultiplyDrivenNet(name) => {
                write!(f, "net {name:?} has more than one driver")
            }
            NetlistError::CombinationalLoop { path } => {
                write!(f, "combinational loop: ")?;
                for name in path {
                    write!(f, "{name:?} -> ")?;
                }
                match path.first() {
                    Some(first) => write!(f, "{first:?}"),
                    None => write!(f, "<empty cycle>"),
                }
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownCell("foo".into());
        assert_eq!(e.to_string(), "unknown cell \"foo\"");
        let e = NetlistError::ArityMismatch {
            cell: "nand2".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expects 2 inputs"));
        assert!(NetlistError::UndrivenNet("n1".into())
            .to_string()
            .contains("no driver"));
        assert!(NetlistError::MultiplyDrivenNet("n1".into())
            .to_string()
            .contains("more than one driver"));
        let e = NetlistError::CombinationalLoop {
            path: vec!["n1".into(), "n2".into()],
        };
        assert!(e.to_string().contains("loop"));
        // The full cycle is spelled out, closed back on the first net.
        assert_eq!(
            e.to_string(),
            "combinational loop: \"n1\" -> \"n2\" -> \"n1\""
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
