//! Physical units used throughout the reproduction.
//!
//! Delays are integer picoseconds ([`Picos`]) so that event-driven
//! simulation and static timing analysis are exact and deterministic
//! (no floating-point accumulation drift across traversal orders).
//! Area is a relative unit ([`Area`]) normalised so that a minimum-size
//! inverter has area 1.0, matching how the paper reports overheads as
//! percentages of a base design.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed time quantity in integer picoseconds.
///
/// Signed so that slacks (which may be negative) use the same type as
/// delays and arrival times.
///
/// # Example
///
/// ```
/// use timber_netlist::Picos;
///
/// let period = Picos(1000);
/// let arrival = Picos(1080);
/// let slack = period - arrival;
/// assert_eq!(slack, Picos(-80));
/// assert!(slack.is_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(pub i64);

impl Picos {
    /// The zero time quantity.
    pub const ZERO: Picos = Picos(0);

    /// Largest representable time; used as the identity for `min` folds.
    pub const MAX: Picos = Picos(i64::MAX);

    /// Smallest representable time; used as the identity for `max` folds.
    pub const MIN: Picos = Picos(i64::MIN);

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// Converts to nanoseconds as a float (for report formatting only).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True when the quantity is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// True when the quantity is zero or positive.
    pub const fn is_non_negative(self) -> bool {
        self.0 >= 0
    }

    /// Saturating addition; used in path-length bounds where overflow
    /// must not wrap.
    pub const fn saturating_add(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_add(rhs.0))
    }

    /// Returns `self` scaled by a dimensionless factor, rounding to the
    /// nearest picosecond. This is the primitive used by variability
    /// derating.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is not finite.
    pub fn scale(self, factor: f64) -> Picos {
        debug_assert!(factor.is_finite(), "scale factor must be finite");
        Picos((self.0 as f64 * factor).round() as i64)
    }

    /// Fraction `self / denom` as `f64`. Returns 0.0 when `denom` is zero.
    pub fn ratio(self, denom: Picos) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// The larger of two quantities.
    pub fn max(self, other: Picos) -> Picos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two quantities.
    pub fn min(self, other: Picos) -> Picos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Neg for Picos {
    type Output = Picos;
    fn neg(self) -> Picos {
        Picos(-self.0)
    }
}

impl Mul<i64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: i64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<i64> for Picos {
    type Output = Picos;
    fn div(self, rhs: i64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

/// Relative cell area, normalised to a minimum-size inverter (= 1.0).
///
/// # Example
///
/// ```
/// use timber_netlist::Area;
///
/// let a = Area(1.0) + Area(4.5);
/// assert!((a.0 - 5.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Area(pub f64);

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area(0.0);

    /// Fraction `self / denom` as `f64`. Returns 0.0 when `denom` is zero.
    pub fn ratio(self, denom: Area) -> f64 {
        if denom.0 == 0.0 {
            0.0
        } else {
            self.0 / denom.0
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}u", self.0)
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Area;
    fn sub(self, rhs: Area) -> Area {
        Area(self.0 - rhs.0)
    }
}

impl Mul<f64> for Area {
    type Output = Area;
    fn mul(self, rhs: f64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_arithmetic() {
        assert_eq!(Picos(3) + Picos(4), Picos(7));
        assert_eq!(Picos(3) - Picos(4), Picos(-1));
        assert_eq!(-Picos(5), Picos(-5));
        assert_eq!(Picos(3) * 4, Picos(12));
        assert_eq!(Picos(12) / 4, Picos(3));
    }

    #[test]
    fn picos_ordering_and_folds() {
        assert_eq!(Picos(3).max(Picos(9)), Picos(9));
        assert_eq!(Picos(3).min(Picos(9)), Picos(3));
        let total: Picos = [Picos(1), Picos(2), Picos(3)].into_iter().sum();
        assert_eq!(total, Picos(6));
    }

    #[test]
    fn picos_scale_rounds_to_nearest() {
        assert_eq!(Picos(100).scale(1.004), Picos(100));
        assert_eq!(Picos(100).scale(1.006), Picos(101));
        assert_eq!(Picos(100).scale(0.5), Picos(50));
    }

    #[test]
    fn picos_ratio_handles_zero_denominator() {
        assert_eq!(Picos(5).ratio(Picos(0)), 0.0);
        assert!((Picos(5).ratio(Picos(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn picos_saturating_add_does_not_wrap() {
        assert_eq!(Picos::MAX.saturating_add(Picos(1)), Picos::MAX);
    }

    #[test]
    fn picos_display() {
        assert_eq!(Picos(40).to_string(), "40ps");
        assert_eq!(Picos(-3).to_string(), "-3ps");
    }

    #[test]
    fn area_arithmetic_and_ratio() {
        let a = Area(2.0) + Area(3.0);
        assert!((a.0 - 5.0).abs() < 1e-12);
        assert!((Area(1.0).ratio(Area(4.0)) - 0.25).abs() < 1e-12);
        assert_eq!(Area(1.0).ratio(Area(0.0)), 0.0);
        let s: Area = [Area(1.0), Area(2.5)].into_iter().sum();
        assert!((s.0 - 3.5).abs() < 1e-12);
    }

    #[test]
    fn area_display() {
        assert_eq!(Area(5.25).to_string(), "5.25u");
    }
}
