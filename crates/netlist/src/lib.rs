//! # timber-netlist
//!
//! Gate-level structural netlist infrastructure for the TIMBER (DATE 2010)
//! reproduction.
//!
//! This crate provides the bottom layer of the stack: a cell library with
//! pin-to-pin timing arcs, a structural netlist representation, graph
//! utilities (topological ordering, fanin/fanout cones), synthetic circuit
//! generators used as stand-ins for the paper's industrial designs, and a
//! zero-delay functional evaluator used to sanity-check generated circuits.
//!
//! The TIMBER paper evaluates its technique on an industrial processor
//! netlist that is not available; the generators in [`gen`] produce
//! structurally realistic pipelined datapaths over which the
//! `timber-sta` crate computes the same path statistics the paper reports
//! (its Fig. 1).
//!
//! # Example
//!
//! ```
//! use timber_netlist::{CellLibrary, NetlistBuilder};
//!
//! # fn main() -> Result<(), timber_netlist::NetlistError> {
//! let lib = CellLibrary::standard();
//! let mut b = NetlistBuilder::new("example", &lib);
//! let a = b.input("a");
//! let c = b.input("b");
//! let n = b.gate("nand2", &[a, c])?;
//! let q = b.gate("inv", &[n])?;
//! b.output("y", q);
//! let netlist = b.finish()?;
//! assert_eq!(netlist.instance_count(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod cell;
pub mod error;
pub mod eval;
pub mod gen;
pub mod graph;
pub mod logic;
pub mod netlist;
pub mod stats;
pub mod units;
pub mod verilog;

pub use arith::{alu, array_multiplier, kogge_stone_adder, AluOp};
pub use cell::{Cell, CellId, CellLibrary, TimingArc};
pub use error::NetlistError;
pub use eval::Evaluator;
pub use gen::{pipelined_datapath, random_dag, ripple_carry_adder, DatapathSpec, RandomDagSpec};
pub use graph::{
    combinational_cycles, cycle_net_names, fanin_cone, fanout_cone, levelize, topo_order,
};
pub use logic::LogicFn;
pub use netlist::{
    Driver, FlopId, InstId, Instance, Net, NetId, Netlist, NetlistBuilder, SeqElement, Sink,
};
pub use stats::NetlistStats;
pub use units::{Area, Picos};

#[cfg(test)]
mod props;
