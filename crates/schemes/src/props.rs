//! Property-based tests (proptest) for the baseline schemes.

#![cfg(test)]

use proptest::prelude::*;

use timber_netlist::Picos;
use timber_pipeline::{CycleContext, SequentialScheme, StageOutcome};

use crate::baselines::{CanaryFf, RazorFf, SoftEdgeFf, TransitionDetectorFf};

fn ctx(period: i64) -> CycleContext {
    CycleContext {
        cycle: 0,
        period: Picos(period),
        nominal_period: Picos(period),
    }
}

proptest! {
    /// Razor's outcome partition: Ok before the edge, Detected inside
    /// the speculation window, Corrupted beyond — with the
    /// metastability aperture carving Detected out of the region around
    /// the edge.
    #[test]
    fn razor_outcome_partition(
        period in 500i64..2000,
        window in 50i64..300,
        meta in 0i64..40,
        arrival_off in -600i64..900,
    ) {
        let mut r = RazorFf::new(Picos(window)).with_metastability(Picos(meta), 3);
        let arrival = Picos(period + arrival_off);
        let out = r.evaluate(0, arrival, Picos::ZERO, &ctx(period));
        let half = meta / 2;
        if meta > 0 && arrival_off > -half && arrival_off <= half {
            prop_assert!(matches!(out, StageOutcome::Detected { .. }), "expected Detected");
        } else if arrival_off <= 0 {
            prop_assert_eq!(out, StageOutcome::Ok);
        } else if arrival_off <= window {
            prop_assert!(matches!(out, StageOutcome::Detected { .. }), "expected Detected");
        } else {
            prop_assert_eq!(out, StageOutcome::Corrupted);
        }
    }

    /// Canary never corrupts inside the region its guard band covers,
    /// and never signals when arrivals are clear of the band.
    #[test]
    fn canary_guard_band_semantics(
        period in 500i64..2000,
        guard in 20i64..200,
        arrival_off in -600i64..300,
    ) {
        let mut c = CanaryFf::new(Picos(guard));
        let arrival = Picos(period + arrival_off);
        let out = c.evaluate(0, arrival, Picos::ZERO, &ctx(period));
        if arrival_off + guard <= 0 {
            prop_assert_eq!(out, StageOutcome::Ok);
        } else if arrival_off <= 0 {
            prop_assert_eq!(out, StageOutcome::Predicted);
        } else {
            prop_assert_eq!(out, StageOutcome::Corrupted);
        }
        prop_assert_eq!(c.guard_band(Picos(period)), Picos(guard));
    }

    /// Soft-edge masking is continuous: the borrowed time equals the
    /// violation exactly, never more than the window.
    #[test]
    fn soft_edge_borrow_exact(
        period in 500i64..2000,
        window in 10i64..200,
        overshoot in 1i64..400,
    ) {
        let mut s = SoftEdgeFf::new(Picos(window));
        let out = s.evaluate(0, Picos(period + overshoot), Picos::ZERO, &ctx(period));
        if overshoot <= window {
            prop_assert_eq!(out, StageOutcome::Masked {
                borrowed: Picos(overshoot),
                flagged: false,
            });
        } else {
            prop_assert_eq!(out, StageOutcome::Corrupted);
        }
    }

    /// The transition detector and ideal Razor agree on *what* they
    /// catch; they differ only in the recovery mechanism.
    #[test]
    fn tdtb_and_razor_catch_the_same_errors(
        period in 500i64..2000,
        window in 50i64..300,
        arrival_off in -300i64..600,
    ) {
        let mut razor = RazorFf::new(Picos(window));
        let mut tdtb = TransitionDetectorFf::new(Picos(window));
        let arrival = Picos(period + arrival_off);
        let r = razor.evaluate(0, arrival, Picos::ZERO, &ctx(period));
        let t = tdtb.evaluate(0, arrival, Picos::ZERO, &ctx(period));
        let caught = |o: &StageOutcome| matches!(o, StageOutcome::Detected { .. });
        prop_assert_eq!(caught(&r), caught(&t));
        prop_assert_eq!(r.state_correct(), t.state_correct());
    }
}
