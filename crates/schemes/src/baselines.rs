//! Behavioural implementations of the baseline techniques.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use timber_netlist::Picos;
use timber_pipeline::{CycleContext, Recovery, SequentialScheme, StageOutcome};

/// Razor-style error detection (Razor, MICRO 2003): a shadow latch
/// re-samples the data a speculation window after the clock edge; a
/// mismatch with the main flop triggers a local instruction replay.
///
/// The timing margin is recovered in full, but every detected error
/// costs replay bubbles, the shadow latch loads the clock tree, and
/// short paths must be padded past the speculation window.
///
/// ## Metastability
///
/// A data transition landing inside the main flop's setup/hold aperture
/// can leave it metastable — one of Razor's well-known hazards, and one
/// the TIMBER flip-flop avoids by construction (M1 re-samples the
/// settled value well after the transition; paper §5.1). With
/// [`RazorFf::with_metastability`], arrivals within `±meta_window/2` of
/// the capturing edge trigger the metastability detector and pay an
/// extended resolution penalty instead of a plain replay.
#[derive(Debug, Clone, Copy)]
pub struct RazorFf {
    /// Speculation window after the edge in which errors are caught.
    pub window: Picos,
    /// Replay penalty per detected error, in cycles.
    pub replay_penalty: u32,
    /// Width of the metastability aperture around the edge (zero
    /// disables the model).
    pub meta_window: Picos,
    /// Penalty for resolving a metastable capture, in cycles.
    pub meta_penalty: u32,
}

impl RazorFf {
    /// Creates a Razor flop with the given speculation window, a
    /// 1-cycle replay penalty (the paper's local replay variant), and
    /// metastability modelling disabled.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: Picos) -> RazorFf {
        assert!(window > Picos::ZERO, "speculation window must be positive");
        RazorFf {
            window,
            replay_penalty: 1,
            meta_window: Picos::ZERO,
            meta_penalty: 0,
        }
    }

    /// Enables the metastability model: arrivals within
    /// `±meta_window/2` of the edge cost `meta_penalty` cycles to
    /// resolve.
    ///
    /// # Panics
    ///
    /// Panics if `meta_window` is negative.
    pub fn with_metastability(mut self, meta_window: Picos, meta_penalty: u32) -> RazorFf {
        assert!(
            meta_window.is_non_negative(),
            "metastability window must be non-negative"
        );
        self.meta_window = meta_window;
        self.meta_penalty = meta_penalty;
        self
    }
}

impl SequentialScheme for RazorFf {
    fn name(&self) -> &str {
        "razor-ff"
    }

    fn evaluate(
        &mut self,
        _stage: usize,
        arrival: Picos,
        _incoming_borrow: Picos,
        ctx: &CycleContext,
    ) -> StageOutcome {
        // Metastability aperture straddles the capturing edge.
        let half_meta = self.meta_window / 2;
        if self.meta_window > Picos::ZERO
            && arrival > ctx.period - half_meta
            && arrival <= ctx.period + half_meta
        {
            return StageOutcome::Detected {
                recovery: Recovery::Replay {
                    penalty_cycles: self.meta_penalty.max(self.replay_penalty),
                },
            };
        }
        if arrival <= ctx.period {
            StageOutcome::Ok
        } else if arrival <= ctx.period + self.window {
            StageOutcome::Detected {
                recovery: Recovery::Replay {
                    penalty_cycles: self.replay_penalty,
                },
            }
        } else {
            // Beyond the speculation window the shadow latch also
            // sampled stale data: silent escape.
            StageOutcome::Corrupted
        }
    }

    fn reset(&mut self) {}
}

/// Transition-detector flip-flop (TDTB-style, Bowman DAC 2009 /
/// ICICDT 2008): detects transitions in a window after the edge and
/// recovers with a one-cycle global stall instead of a replay, which
/// avoids Razor's metastability concerns.
#[derive(Debug, Clone, Copy)]
pub struct TransitionDetectorFf {
    /// Detection window after the edge.
    pub window: Picos,
}

impl TransitionDetectorFf {
    /// Creates a transition-detector flop.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: Picos) -> TransitionDetectorFf {
        assert!(window > Picos::ZERO, "detection window must be positive");
        TransitionDetectorFf { window }
    }
}

impl SequentialScheme for TransitionDetectorFf {
    fn name(&self) -> &str {
        "transition-detector-ff"
    }

    fn evaluate(
        &mut self,
        _stage: usize,
        arrival: Picos,
        _incoming_borrow: Picos,
        ctx: &CycleContext,
    ) -> StageOutcome {
        if arrival <= ctx.period {
            StageOutcome::Ok
        } else if arrival <= ctx.period + self.window {
            StageOutcome::Detected {
                recovery: Recovery::Stall { penalty_cycles: 1 },
            }
        } else {
            StageOutcome::Corrupted
        }
    }

    fn reset(&mut self) {}
}

/// Canary flip-flop error *prediction* (Sato, ISQED 2007): a canary
/// flop samples a delayed copy of the data; if the canary differs from
/// the main flop the data arrived inside the guard band before the
/// edge and an error is predicted — before any corruption.
///
/// Because the guard band must stay reserved, the dynamic-variability
/// timing margin is never actually recovered (the paper's core
/// criticism of prediction techniques).
#[derive(Debug, Clone, Copy)]
pub struct CanaryFf {
    /// Guard band before the edge in which arrivals trigger a
    /// prediction.
    pub guard: Picos,
}

impl CanaryFf {
    /// Creates a canary flop with the given guard band.
    ///
    /// # Panics
    ///
    /// Panics if `guard` is not positive.
    pub fn new(guard: Picos) -> CanaryFf {
        assert!(guard > Picos::ZERO, "guard band must be positive");
        CanaryFf { guard }
    }
}

impl SequentialScheme for CanaryFf {
    fn name(&self) -> &str {
        "canary-ff"
    }

    fn evaluate(
        &mut self,
        _stage: usize,
        arrival: Picos,
        _incoming_borrow: Picos,
        ctx: &CycleContext,
    ) -> StageOutcome {
        if arrival + self.guard <= ctx.period {
            StageOutcome::Ok
        } else if arrival <= ctx.period {
            StageOutcome::Predicted
        } else {
            // The variation outran the prediction (fast local event):
            // prediction techniques cannot catch it.
            StageOutcome::Corrupted
        }
    }

    fn reset(&mut self) {}

    fn guard_band(&self, _nominal_period: Picos) -> Picos {
        self.guard
    }
}

/// Soft-edge flip-flop (Wieckowski, CICC 2008): a design-time fixed
/// transparency window that masks small violations by implicit time
/// borrowing. No detection, no flagging — violations beyond the window
/// escape silently.
#[derive(Debug, Clone, Copy)]
pub struct SoftEdgeFf {
    /// Transparency window after the edge.
    pub window: Picos,
}

impl SoftEdgeFf {
    /// Creates a soft-edge flop.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: Picos) -> SoftEdgeFf {
        assert!(window > Picos::ZERO, "transparency window must be positive");
        SoftEdgeFf { window }
    }
}

impl SequentialScheme for SoftEdgeFf {
    fn name(&self) -> &str {
        "soft-edge-ff"
    }

    fn evaluate(
        &mut self,
        _stage: usize,
        arrival: Picos,
        _incoming_borrow: Picos,
        ctx: &CycleContext,
    ) -> StageOutcome {
        if arrival <= ctx.period {
            StageOutcome::Ok
        } else if arrival <= ctx.period + self.window {
            StageOutcome::Masked {
                borrowed: arrival - ctx.period,
                flagged: false,
            }
        } else {
            StageOutcome::Corrupted
        }
    }

    fn reset(&mut self) {}
}

/// Logical error masking with redundant logic (Choudhury & Mohanram,
/// DATE 2009): redundant logic computes the correct output with a
/// smaller delay when a covered critical path is exercised, masking the
/// error with *zero* borrowed time. Coverage is partial: with
/// probability `1 − coverage` the sensitized path is not covered and
/// the violation escapes.
#[derive(Debug)]
pub struct LogicalMasking {
    /// Fraction of critical-path sensitizations the redundant logic
    /// covers.
    pub coverage: f64,
    /// Delay margin up to which covered paths are corrected.
    pub margin: Picos,
    rng: StdRng,
}

impl LogicalMasking {
    /// Creates a logical-masking scheme.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]` or `margin` is not
    /// positive.
    pub fn new(coverage: f64, margin: Picos, seed: u64) -> LogicalMasking {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        assert!(margin > Picos::ZERO, "margin must be positive");
        LogicalMasking {
            coverage,
            margin,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SequentialScheme for LogicalMasking {
    fn name(&self) -> &str {
        "logical-masking"
    }

    fn evaluate(
        &mut self,
        _stage: usize,
        arrival: Picos,
        _incoming_borrow: Picos,
        ctx: &CycleContext,
    ) -> StageOutcome {
        if arrival <= ctx.period {
            StageOutcome::Ok
        } else if arrival <= ctx.period + self.margin && self.rng.gen_bool(self.coverage) {
            // The redundant logic produced the correct value in time:
            // masked without borrowing.
            StageOutcome::Masked {
                borrowed: Picos::ZERO,
                flagged: false,
            }
        } else {
            StageOutcome::Corrupted
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CycleContext {
        CycleContext {
            cycle: 0,
            period: Picos(1000),
            nominal_period: Picos(1000),
        }
    }

    #[test]
    fn razor_detects_in_window_and_replays() {
        let mut r = RazorFf::new(Picos(100));
        assert_eq!(
            r.evaluate(0, Picos(990), Picos::ZERO, &ctx()),
            StageOutcome::Ok
        );
        assert_eq!(
            r.evaluate(0, Picos(1050), Picos::ZERO, &ctx()),
            StageOutcome::Detected {
                recovery: Recovery::Replay { penalty_cycles: 1 }
            }
        );
        assert_eq!(
            r.evaluate(0, Picos(1150), Picos::ZERO, &ctx()),
            StageOutcome::Corrupted
        );
    }

    #[test]
    fn razor_metastability_aperture_costs_extra() {
        let mut r = RazorFf::new(Picos(100)).with_metastability(Picos(20), 4);
        // Inside the aperture (period ± 10): extended resolution.
        assert_eq!(
            r.evaluate(0, Picos(995), Picos::ZERO, &ctx()),
            StageOutcome::Detected {
                recovery: Recovery::Replay { penalty_cycles: 4 }
            }
        );
        assert_eq!(
            r.evaluate(0, Picos(1008), Picos::ZERO, &ctx()),
            StageOutcome::Detected {
                recovery: Recovery::Replay { penalty_cycles: 4 }
            }
        );
        // Outside the aperture: plain behaviour.
        assert_eq!(
            r.evaluate(0, Picos(985), Picos::ZERO, &ctx()),
            StageOutcome::Ok
        );
        assert_eq!(
            r.evaluate(0, Picos(1050), Picos::ZERO, &ctx()),
            StageOutcome::Detected {
                recovery: Recovery::Replay { penalty_cycles: 1 }
            }
        );
    }

    #[test]
    fn razor_without_metastability_model_is_unchanged_near_edge() {
        let mut r = RazorFf::new(Picos(100));
        assert_eq!(
            r.evaluate(0, Picos(999), Picos::ZERO, &ctx()),
            StageOutcome::Ok
        );
    }

    #[test]
    fn transition_detector_stalls_instead_of_replaying() {
        let mut t = TransitionDetectorFf::new(Picos(100));
        assert_eq!(
            t.evaluate(0, Picos(1050), Picos::ZERO, &ctx()),
            StageOutcome::Detected {
                recovery: Recovery::Stall { penalty_cycles: 1 }
            }
        );
    }

    #[test]
    fn canary_predicts_in_guard_band() {
        let mut c = CanaryFf::new(Picos(80));
        assert_eq!(
            c.evaluate(0, Picos(900), Picos::ZERO, &ctx()),
            StageOutcome::Ok
        );
        assert_eq!(
            c.evaluate(0, Picos(950), Picos::ZERO, &ctx()),
            StageOutcome::Predicted
        );
        // A fast variation that jumps past the guard band escapes.
        assert_eq!(
            c.evaluate(0, Picos(1010), Picos::ZERO, &ctx()),
            StageOutcome::Corrupted
        );
        assert_eq!(c.guard_band(Picos(1000)), Picos(80));
    }

    #[test]
    fn soft_edge_masks_silently_within_window() {
        let mut s = SoftEdgeFf::new(Picos(30));
        let out = s.evaluate(0, Picos(1020), Picos::ZERO, &ctx());
        assert_eq!(
            out,
            StageOutcome::Masked {
                borrowed: Picos(20),
                flagged: false
            }
        );
        assert_eq!(
            s.evaluate(0, Picos(1040), Picos::ZERO, &ctx()),
            StageOutcome::Corrupted
        );
    }

    #[test]
    fn logical_masking_with_full_coverage_masks_without_borrowing() {
        let mut l = LogicalMasking::new(1.0, Picos(100), 1);
        let out = l.evaluate(0, Picos(1050), Picos::ZERO, &ctx());
        assert_eq!(
            out,
            StageOutcome::Masked {
                borrowed: Picos::ZERO,
                flagged: false
            }
        );
    }

    #[test]
    fn logical_masking_with_zero_coverage_escapes() {
        let mut l = LogicalMasking::new(0.0, Picos(100), 1);
        assert_eq!(
            l.evaluate(0, Picos(1050), Picos::ZERO, &ctx()),
            StageOutcome::Corrupted
        );
    }

    #[test]
    fn logical_masking_coverage_is_statistical() {
        let mut l = LogicalMasking::new(0.7, Picos(100), 42);
        let n = 10_000;
        let masked = (0..n)
            .filter(|_| {
                matches!(
                    l.evaluate(0, Picos(1050), Picos::ZERO, &ctx()),
                    StageOutcome::Masked { .. }
                )
            })
            .count();
        let rate = masked as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.03, "coverage rate {rate}");
    }

    #[test]
    fn scheme_names_are_unique() {
        let names = [
            RazorFf::new(Picos(1)).name().to_owned(),
            TransitionDetectorFf::new(Picos(1)).name().to_owned(),
            CanaryFf::new(Picos(1)).name().to_owned(),
            SoftEdgeFf::new(Picos(1)).name().to_owned(),
            LogicalMasking::new(0.5, Picos(1), 0).name().to_owned(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "guard band must be positive")]
    fn canary_validates_guard() {
        let _ = CanaryFf::new(Picos(0));
    }
}
