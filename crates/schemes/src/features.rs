//! The qualitative feature matrix of online timing-error-resilience
//! techniques — the reproduction of the paper's Table 1.
//!
//! Each column of the paper's table is represented by a
//! [`TechniqueFeatures`] record derived from the corresponding
//! implemented scheme's behaviour; [`feature_matrix`] returns them in
//! the paper's column order.

use std::fmt;

/// Technique category (the paper's three classes, with masking split
/// into its logical and temporal flavours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Monitor for transitions after the clock edge; recover by replay
    /// or rollback.
    ErrorDetection,
    /// Monitor a guard band before the clock edge; never corrupt, never
    /// recover margin.
    ErrorPrediction,
    /// Mask errors with redundant logic.
    LogicalMasking,
    /// Mask errors by time borrowing (TIMBER's class).
    TemporalMasking,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::ErrorDetection => write!(f, "Error detection"),
            Category::ErrorPrediction => write!(f, "Error prediction"),
            Category::LogicalMasking => write!(f, "Error masking (logical)"),
            Category::TemporalMasking => write!(f, "Error masking (temporal)"),
        }
    }
}

/// When the technique observes the error relative to the clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhenDetected {
    /// After the capturing edge (the state is already corrupt).
    AfterEdge,
    /// Before the capturing edge (the state is still correct).
    BeforeEdge,
    /// Never (pure masking).
    NotObserved,
}

impl fmt::Display for WhenDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhenDetected::AfterEdge => write!(f, "after"),
            WhenDetected::BeforeEdge => write!(f, "before"),
            WhenDetected::NotObserved => write!(f, "n/a"),
        }
    }
}

/// Coarse overhead classes used by the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Overhead {
    /// No overhead.
    None,
    /// Small overhead.
    Small,
    /// Moderate overhead.
    Moderate,
    /// Large overhead.
    Large,
}

impl fmt::Display for Overhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overhead::None => write!(f, "none"),
            Overhead::Small => write!(f, "small"),
            Overhead::Moderate => write!(f, "moderate"),
            Overhead::Large => write!(f, "large"),
        }
    }
}

/// How much of the dynamic-variability timing margin the technique
/// recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarginRecovery {
    /// Full recovery.
    Full,
    /// Partial recovery (a guard band remains reserved).
    Partial,
}

impl fmt::Display for MarginRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarginRecovery::Full => write!(f, "full"),
            MarginRecovery::Partial => write!(f, "partial"),
        }
    }
}

/// One column of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechniqueFeatures {
    /// Technique name (representative implementations in parentheses).
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Error-detection mechanism.
    pub detection_mechanism: &'static str,
    /// When the error is observed relative to the clock edge.
    pub when: WhenDetected,
    /// Error-recovery mechanism.
    pub recovery: &'static str,
    /// Whether extra sequential elements load the clock tree.
    pub clock_tree_loading: bool,
    /// Whether short paths must be padded.
    pub short_path_padding: bool,
    /// Sequential-element overhead class.
    pub sequential_overhead: Overhead,
    /// Combinational-logic overhead class.
    pub combinational_overhead: Overhead,
    /// Timing-margin recovery.
    pub margin_recovery: MarginRecovery,
    /// Variability sources the technique can target.
    pub variability_targeted: &'static str,
    /// Representative published techniques.
    pub representatives: &'static str,
}

/// Returns the four columns of the paper's Table 1, in order: error
/// detection, error prediction, logical masking, temporal masking
/// (TIMBER).
pub fn feature_matrix() -> Vec<TechniqueFeatures> {
    vec![
        TechniqueFeatures {
            name: "Error detection",
            category: Category::ErrorDetection,
            detection_mechanism: "duplicate latch/FFs, transition detectors",
            when: WhenDetected::AfterEdge,
            recovery: "rollback or instruction replay",
            clock_tree_loading: true,
            short_path_padding: true,
            sequential_overhead: Overhead::Large,
            combinational_overhead: Overhead::Small,
            margin_recovery: MarginRecovery::Full,
            variability_targeted: "all dynamic",
            representatives: "Razor, TDTB/EDS",
        },
        TechniqueFeatures {
            name: "Error prediction",
            category: Category::ErrorPrediction,
            detection_mechanism: "duplicate latch/FFs, sensors",
            when: WhenDetected::BeforeEdge,
            recovery: "no error",
            clock_tree_loading: true,
            short_path_padding: true,
            sequential_overhead: Overhead::Large,
            combinational_overhead: Overhead::None,
            margin_recovery: MarginRecovery::Partial,
            variability_targeted: "gradual dynamic",
            representatives: "Canary FFs, aging sensors, CFP",
        },
        TechniqueFeatures {
            name: "Logical error masking",
            category: Category::LogicalMasking,
            detection_mechanism: "redundant logic",
            when: WhenDetected::NotObserved,
            recovery: "no error",
            clock_tree_loading: false,
            short_path_padding: false,
            sequential_overhead: Overhead::None,
            combinational_overhead: Overhead::Moderate,
            margin_recovery: MarginRecovery::Full,
            variability_targeted: "all dynamic",
            representatives: "approximate circuits (DATE'09)",
        },
        TechniqueFeatures {
            name: "Temporal error masking (TIMBER)",
            category: Category::TemporalMasking,
            detection_mechanism: "duplicate masters / pulse-gated latches",
            when: WhenDetected::AfterEdge,
            recovery: "no error",
            clock_tree_loading: true,
            short_path_padding: true,
            sequential_overhead: Overhead::Large,
            combinational_overhead: Overhead::Small,
            margin_recovery: MarginRecovery::Full,
            variability_targeted: "all dynamic",
            representatives: "TIMBER FF, TIMBER latch, DCFF, PCFF",
        },
    ]
}

/// A Table 1 row: label plus a per-column value extractor.
type Table1Row = (&'static str, Box<dyn Fn(&TechniqueFeatures) -> String>);

/// Renders the matrix as an aligned text table (used by the `repro`
/// binary for the Table 1 reproduction).
pub fn render_table1() -> String {
    let cols = feature_matrix();
    let rows: Vec<Table1Row> = vec![
        (
            "Feature",
            Box::new(|c: &TechniqueFeatures| c.name.to_owned()),
        ),
        (
            "Detection mechanism",
            Box::new(|c: &TechniqueFeatures| c.detection_mechanism.to_owned()),
        ),
        (
            "When? (vs clock edge)",
            Box::new(|c: &TechniqueFeatures| c.when.to_string()),
        ),
        (
            "Recovery mechanism",
            Box::new(|c: &TechniqueFeatures| c.recovery.to_owned()),
        ),
        (
            "Clock-tree loading",
            Box::new(|c: &TechniqueFeatures| yesno(c.clock_tree_loading)),
        ),
        (
            "Short-path padding",
            Box::new(|c: &TechniqueFeatures| yesno(c.short_path_padding)),
        ),
        (
            "Sequential overhead",
            Box::new(|c: &TechniqueFeatures| c.sequential_overhead.to_string()),
        ),
        (
            "Combinational overhead",
            Box::new(|c: &TechniqueFeatures| c.combinational_overhead.to_string()),
        ),
        (
            "Timing margin recovery",
            Box::new(|c: &TechniqueFeatures| c.margin_recovery.to_string()),
        ),
        (
            "Variability targeted",
            Box::new(|c: &TechniqueFeatures| c.variability_targeted.to_owned()),
        ),
        (
            "Techniques",
            Box::new(|c: &TechniqueFeatures| c.representatives.to_owned()),
        ),
    ];
    let mut out = String::new();
    for (label, get) in rows {
        out.push_str(&format!("{label:<24}"));
        for c in &cols {
            out.push_str(&format!("| {:<38}", get(c)));
        }
        out.push('\n');
    }
    out
}

fn yesno(b: bool) -> String {
    if b { "yes" } else { "no" }.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_four_columns_in_paper_order() {
        let m = feature_matrix();
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].category, Category::ErrorDetection);
        assert_eq!(m[1].category, Category::ErrorPrediction);
        assert_eq!(m[2].category, Category::LogicalMasking);
        assert_eq!(m[3].category, Category::TemporalMasking);
    }

    #[test]
    fn timber_column_matches_paper_claims() {
        let timber = &feature_matrix()[3];
        // TIMBER detects after the edge but needs no recovery...
        assert_eq!(timber.when, WhenDetected::AfterEdge);
        assert_eq!(timber.recovery, "no error");
        // ...recovers the full margin, targets all dynamic sources...
        assert_eq!(timber.margin_recovery, MarginRecovery::Full);
        assert_eq!(timber.variability_targeted, "all dynamic");
        // ...at the cost of short-path padding and sequential overhead.
        assert!(timber.short_path_padding);
        assert_eq!(timber.sequential_overhead, Overhead::Large);
    }

    #[test]
    fn prediction_recovers_only_partial_margin() {
        let pred = &feature_matrix()[1];
        assert_eq!(pred.margin_recovery, MarginRecovery::Partial);
        assert_eq!(pred.when, WhenDetected::BeforeEdge);
        assert_eq!(pred.variability_targeted, "gradual dynamic");
    }

    #[test]
    fn only_detection_needs_rollback() {
        let m = feature_matrix();
        let needs_rollback: Vec<_> = m
            .iter()
            .filter(|c| c.recovery.contains("rollback"))
            .collect();
        assert_eq!(needs_rollback.len(), 1);
        assert_eq!(needs_rollback[0].category, Category::ErrorDetection);
    }

    #[test]
    fn logical_masking_avoids_sequential_costs() {
        let lm = &feature_matrix()[2];
        assert!(!lm.clock_tree_loading);
        assert!(!lm.short_path_padding);
        assert_eq!(lm.sequential_overhead, Overhead::None);
        assert_eq!(lm.combinational_overhead, Overhead::Moderate);
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let t = render_table1();
        for label in [
            "Detection mechanism",
            "Recovery mechanism",
            "Clock-tree loading",
            "Short-path padding",
            "Timing margin recovery",
        ] {
            assert!(t.contains(label), "missing row {label}");
        }
        assert!(t.contains("TIMBER"));
    }

    #[test]
    fn overhead_ordering_is_meaningful() {
        assert!(Overhead::None < Overhead::Small);
        assert!(Overhead::Small < Overhead::Moderate);
        assert!(Overhead::Moderate < Overhead::Large);
    }
}
