//! The canonical scheme registry: one stable identifier per implemented
//! resilience technique, plus a factory that derives every technique's
//! parameters from a single [`CheckingPeriod`] the way the experiments
//! do (Razor window = the checking period, canary guard = 8% of the
//! clock, soft-edge transparency = one borrow interval).
//!
//! The registry exists so cross-cutting subsystems — the conformance
//! oracle, the bench experiments, future fuzzers — enumerate *the same*
//! eight design points instead of each hand-rolling its own list that
//! silently drifts.

use timber::{CheckingPeriod, TimberFfScheme, TimberLatchScheme};
use timber_netlist::Picos;
use timber_pipeline::reference::MarginedFlop;
use timber_pipeline::SequentialScheme;

use crate::baselines::{CanaryFf, LogicalMasking, RazorFf, SoftEdgeFf, TransitionDetectorFf};

/// Stable identifier of one implemented resilience technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// TIMBER flip-flop with discrete borrowing and the error relay.
    TimberFf,
    /// TIMBER pulsed latch with continuous borrowing.
    TimberLatch,
    /// Razor shadow-latch detection with local replay.
    RazorFf,
    /// Transition-detector detection with a global stall.
    TransitionDetectorFf,
    /// Canary prediction before the edge.
    CanaryFf,
    /// Design-time soft-edge transparency window.
    SoftEdgeFf,
    /// Logical error masking with redundant logic.
    LogicalMasking,
    /// Conventional margined flip-flop (the baseline design point).
    ConventionalFf,
}

impl SchemeId {
    /// Every implemented scheme, in the canonical comparison order used
    /// by the experiments and the conformance campaign.
    pub const ALL: [SchemeId; 8] = [
        SchemeId::TimberFf,
        SchemeId::TimberLatch,
        SchemeId::RazorFf,
        SchemeId::TransitionDetectorFf,
        SchemeId::CanaryFf,
        SchemeId::SoftEdgeFf,
        SchemeId::LogicalMasking,
        SchemeId::ConventionalFf,
    ];

    /// The scheme's stable name (matches each implementation's
    /// `SequentialScheme::name`).
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::TimberFf => "timber-ff",
            SchemeId::TimberLatch => "timber-latch",
            SchemeId::RazorFf => "razor-ff",
            SchemeId::TransitionDetectorFf => "transition-detector-ff",
            SchemeId::CanaryFf => "canary-ff",
            SchemeId::SoftEdgeFf => "soft-edge-ff",
            SchemeId::LogicalMasking => "logical-masking",
            SchemeId::ConventionalFf => "conventional-ff",
        }
    }

    /// Resolves a stable name back to its identifier.
    pub fn from_name(name: &str) -> Option<SchemeId> {
        SchemeId::ALL.into_iter().find(|id| id.name() == name)
    }

    /// True when the scheme can mask violations by borrowing time
    /// (produces `StageOutcome::Masked`).
    pub fn is_masking(self) -> bool {
        matches!(
            self,
            SchemeId::TimberFf
                | SchemeId::TimberLatch
                | SchemeId::SoftEdgeFf
                | SchemeId::LogicalMasking
        )
    }

    /// True when the scheme recovers through pipeline bubbles
    /// (produces `StageOutcome::Detected`), which shifts the cycle
    /// numbering of everything downstream of a detection.
    pub fn is_detection(self) -> bool {
        matches!(self, SchemeId::RazorFf | SchemeId::TransitionDetectorFf)
    }
}

/// Factory building any [`SchemeId`] with parameters derived from one
/// checking-period schedule, exactly as the experiments derive them.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    schedule: CheckingPeriod,
    stages: usize,
    coverage: f64,
}

impl Registry {
    /// A registry deriving every parameter from `schedule` for a
    /// pipeline with `stages` boundaries. Logical-masking coverage
    /// defaults to the experiments' 0.8.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(schedule: CheckingPeriod, stages: usize) -> Registry {
        assert!(stages > 0, "need at least one stage boundary");
        Registry {
            schedule,
            stages,
            coverage: 0.8,
        }
    }

    /// Overrides the logical-masking coverage fraction. The conformance
    /// oracle pins it to 1.0 so the scheme's internal RNG cannot make
    /// two otherwise-identical models diverge.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    #[must_use]
    pub fn coverage(mut self, coverage: f64) -> Registry {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        self.coverage = coverage;
        self
    }

    /// The schedule parameters are derived from.
    pub fn schedule(&self) -> &CheckingPeriod {
        &self.schedule
    }

    /// Detection/masking window shared by Razor, the transition
    /// detector and logical masking: the full checking period.
    pub fn window(&self) -> Picos {
        self.schedule.checking()
    }

    /// Canary guard band: 8% of the clock period (the experiments'
    /// derivation in `timber-bench`'s margin sweep).
    pub fn guard(&self) -> Picos {
        self.schedule.period().scale(0.08)
    }

    /// Soft-edge transparency window: one borrow interval.
    pub fn soft_window(&self) -> Picos {
        self.schedule.interval()
    }

    /// Builds the scheme, seeding any internal randomness with `seed`.
    pub fn build(&self, id: SchemeId, seed: u64) -> Box<dyn SequentialScheme> {
        match id {
            SchemeId::TimberFf => Box::new(TimberFfScheme::new(self.schedule, self.stages)),
            SchemeId::TimberLatch => Box::new(TimberLatchScheme::new(self.schedule, self.stages)),
            SchemeId::RazorFf => Box::new(RazorFf::new(self.window())),
            SchemeId::TransitionDetectorFf => Box::new(TransitionDetectorFf::new(self.window())),
            SchemeId::CanaryFf => Box::new(CanaryFf::new(self.guard())),
            SchemeId::SoftEdgeFf => Box::new(SoftEdgeFf::new(self.soft_window())),
            SchemeId::LogicalMasking => {
                Box::new(LogicalMasking::new(self.coverage, self.window(), seed))
            }
            SchemeId::ConventionalFf => Box::new(MarginedFlop::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> CheckingPeriod {
        CheckingPeriod::new(Picos(1000), 24.0, 1, 2).unwrap()
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for id in SchemeId::ALL {
            assert!(seen.insert(id.name()), "duplicate name {}", id.name());
            assert_eq!(SchemeId::from_name(id.name()), Some(id));
        }
        assert_eq!(SchemeId::from_name("frobnicator-ff"), None);
    }

    #[test]
    fn built_scheme_names_match_ids() {
        let reg = Registry::new(sched(), 4);
        for id in SchemeId::ALL {
            let scheme = reg.build(id, 7);
            assert_eq!(scheme.name(), id.name(), "{id:?}");
        }
    }

    #[test]
    fn derived_parameters_follow_the_schedule() {
        let reg = Registry::new(sched(), 4);
        assert_eq!(reg.window(), Picos(240));
        assert_eq!(reg.guard(), Picos(80));
        assert_eq!(reg.soft_window(), Picos(80));
    }

    #[test]
    fn masking_and_detection_partitions_are_disjoint() {
        for id in SchemeId::ALL {
            assert!(!(id.is_masking() && id.is_detection()), "{id:?}");
        }
    }

    #[test]
    #[should_panic(expected = "coverage in [0,1]")]
    fn coverage_is_validated() {
        let _ = Registry::new(sched(), 1).coverage(1.5);
    }
}
