//! # timber-schemes
//!
//! The baseline online timing-error-resilience techniques the TIMBER
//! paper compares against (its §2 and Table 1), implemented behind the
//! same `timber_pipeline::SequentialScheme` interface as TIMBER itself:
//!
//! * [`RazorFf`] — error *detection* with duplicate sampling after the
//!   clock edge and instruction replay (Razor, MICRO 2003);
//! * [`TransitionDetectorFf`] — error detection with a transition
//!   detector and a one-cycle global stall (TDTB-style, Bowman 2008);
//! * [`CanaryFf`] — error *prediction* with a delayed canary sample
//!   before the edge (Sato 2007): no corruption, but a guard band that
//!   forfeits margin recovery;
//! * [`SoftEdgeFf`] — design-time soft-edge flip-flop: a fixed small
//!   transparency window masks tiny violations but detects nothing;
//! * [`LogicalMasking`] — logical error masking with redundant logic
//!   (Choudhury DATE 2009): covered critical paths produce the correct
//!   value early, uncovered ones escape;
//! * `MarginedFlop` (re-exported from `timber-pipeline`) — the
//!   conventional design point.
//!
//! [`feature_matrix`] reproduces the paper's Table 1 from the
//! implemented techniques' properties.

#![warn(missing_docs)]

pub mod baselines;
pub mod features;
pub mod registry;

pub use baselines::{CanaryFf, LogicalMasking, RazorFf, SoftEdgeFf, TransitionDetectorFf};
pub use features::{
    feature_matrix, render_table1, Category, MarginRecovery, Overhead, TechniqueFeatures,
    WhenDetected,
};
pub use registry::{Registry, SchemeId};
pub use timber_pipeline::reference::MarginedFlop;

#[cfg(test)]
mod props;
