//! Captured conformance reproducers.
//!
//! Each test here started life as the `repro_test` field of a campaign
//! divergence (`repro conform` prints it ready to paste). The workload
//! is pinned as a literal arrival table, so the case survives any
//! change to the workload generator, and the assertion is the one the
//! oracle makes: both models must agree cycle-for-cycle.

use timber::CheckingPeriod;
use timber_netlist::Picos;
use timber_repro::conformance::{oracle, SchemeId, Workload};

/// Minimized by the oracle from a `TbSingle` campaign case (seed 5):
/// a single exact-boundary arrival — overshoot of exactly one 80 ps
/// interval at cycle 3, stage 0 — with every other cell quiet. This is
/// the boundary the seeded model-B bug (`--sabotage`, which shortens
/// the sampling instants by 1 ps) misclassifies as corrupted, so it is
/// the sharpest agreement point the harness owns: the honest models
/// must agree on it, and the sabotaged model must be caught on it.
fn minimized_boundary_workload() -> Workload {
    let schedule = CheckingPeriod::new(Picos(1000), 24.0, 1, 2).unwrap();
    let rows: [&[i64]; 4] = [
        &[400, 400, 400, 400],
        &[400, 400, 400, 400],
        &[400, 400, 400, 400],
        &[1080, 400, 400, 400],
    ];
    Workload::from_rows(schedule, &rows)
}

#[test]
fn conformance_regression_timber_ff_seed5() {
    let w = minimized_boundary_workload();
    let divergence = oracle::check(&w, SchemeId::TimberFf, 5, false);
    assert!(divergence.is_none(), "{divergence:?}");
}

#[test]
fn conformance_regression_timber_ff_seed5_sabotage_is_caught() {
    let w = minimized_boundary_workload();
    let d = oracle::check(&w, SchemeId::TimberFf, 5, true).expect("seeded bug must diverge");
    assert_eq!(d.cycle, 3);
    assert_eq!(d.stage, Some(0));
    assert!(d.analytical.contains("masked"), "{d}");
    assert_eq!(d.event_driven, "corrupted", "{d}");
}
