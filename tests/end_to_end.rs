//! End-to-end integration: netlist generation → STA → TIMBER design
//! planning → overhead accounting, all through the public APIs.

use timber_repro::core::design::{ElementStyle, TimberDesign};
use timber_repro::core::{CheckingPeriod, ConsolidationTree};
use timber_repro::netlist::{pipelined_datapath, CellLibrary, DatapathSpec, Picos};
use timber_repro::proc_model::structural;
use timber_repro::proc_model::PerfPoint;
use timber_repro::sta::{ClockConstraint, HoldAnalysis, PathDistribution, TimingAnalysis};

fn testbench_netlist(seed: u64) -> timber_repro::netlist::Netlist {
    let lib = CellLibrary::standard();
    pipelined_datapath(&lib, &DatapathSpec::uniform(5, 16, 200, 0.7, seed)).expect("generator")
}

fn fitting_period(nl: &timber_repro::netlist::Netlist, frac: f64) -> Picos {
    let sta = TimingAnalysis::run(nl, &ClockConstraint::with_period(Picos(1_000_000)));
    sta.worst_arrival().scale(1.0 / frac)
}

#[test]
fn full_flow_produces_consistent_design_report() {
    let nl = testbench_netlist(404);
    let period = fitting_period(&nl, 0.95);
    let clk = ClockConstraint::with_period(period);

    for c in [10.0, 20.0, 30.0, 40.0] {
        let schedule = CheckingPeriod::deferred_flagging(period, c).expect("valid schedule");
        let report = TimberDesign::new(schedule, ElementStyle::FlipFlop, c).plan(&nl, &clk);

        // Replacement set equals the STA endpoint classification.
        let sta = TimingAnalysis::run(&nl, &clk);
        let expected = PathDistribution::replacement_set(&sta, &nl, c);
        assert_eq!(report.replaced, expected);

        // One relay estimate per replaced flop, all with bounded cones.
        assert_eq!(report.relay_estimates.len(), report.replaced.len());
        for e in &report.relay_estimates {
            assert!(e.sources <= nl.flop_count());
        }

        // Padding must cover at least the worst short path.
        let hold = HoldAnalysis::run(&nl, &clk);
        let plan = hold.padding_plan(&nl, schedule.checking());
        assert_eq!(report.padding_total, plan.total_padding);

        // The consolidation tree always meets the 1.5-cycle budget at
        // these design sizes.
        assert!(report.consolidation_ok());
    }
}

#[test]
fn checking_period_covers_exactly_the_vulnerable_paths() {
    // A path is "covered" by TIMBER when its delay can grow by the
    // recovered margin without corrupting. Verify the replacement rule
    // picks exactly the endpoints whose paths could need that.
    let nl = testbench_netlist(17);
    let period = fitting_period(&nl, 0.95);
    let clk = ClockConstraint::with_period(period);
    let sta = TimingAnalysis::run(&nl, &clk);

    let c = 20.0;
    let threshold = period.scale(1.0 - c / 100.0);
    let replaced = PathDistribution::replacement_set(&sta, &nl, c);
    for f in nl.flop_ids() {
        let arrival = sta.arrival(nl.flop(f).d());
        assert_eq!(
            replaced.contains(&f),
            arrival >= threshold,
            "flop {f} arrival {arrival} vs threshold {threshold}"
        );
    }
}

#[test]
fn consolidation_scales_to_processor_sized_designs() {
    // 50k error sources still consolidate within 1.5 cycles at 1 GHz.
    let schedule = CheckingPeriod::deferred_flagging(Picos(1000), 12.0).expect("valid");
    let tree = ConsolidationTree::new(50_000);
    assert!(tree.meets_budget(&schedule), "latency {}", tree.latency());
}

#[test]
fn structural_proxy_flows_through_sta_and_design_planning() {
    let nl = structural::proxy_netlist(2024);
    let period = structural::proxy_period(&nl, PerfPoint::High);
    let clk = ClockConstraint::with_period(period);
    let schedule = CheckingPeriod::deferred_flagging(period, 30.0).expect("valid");
    let report = TimberDesign::new(schedule, ElementStyle::FlipFlop, 30.0).plan(&nl, &clk);
    assert!(!report.replaced.is_empty());
    // Relay slack must respect the half-cycle budget everywhere.
    if let Some(slack) = report.worst_relay_slack_pct() {
        assert!(
            slack > 0.0,
            "relay must settle within half a cycle: {slack}"
        );
    }
}

#[test]
fn latch_and_ff_styles_replace_the_same_flops() {
    let nl = testbench_netlist(88);
    let period = fitting_period(&nl, 0.95);
    let clk = ClockConstraint::with_period(period);
    let schedule = CheckingPeriod::deferred_flagging(period, 25.0).expect("valid");
    let ff = TimberDesign::new(schedule, ElementStyle::FlipFlop, 25.0).plan(&nl, &clk);
    let latch = TimberDesign::new(schedule, ElementStyle::Latch, 25.0).plan(&nl, &clk);
    assert_eq!(ff.replaced, latch.replaced);
    assert!(latch.relay_estimates.is_empty());
    assert!(!ff.relay_estimates.is_empty() || ff.replaced.is_empty());
}
