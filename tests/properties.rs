//! Cross-crate property-based tests (proptest): invariants that must
//! hold for *any* configuration, not just the hand-picked ones.

use proptest::prelude::*;

use timber_repro::core::{CaptureOutcome, CheckingPeriod, TimberFlipFlop, TimberLatch};
use timber_repro::netlist::{random_dag, CellLibrary, Picos, RandomDagSpec};
use timber_repro::sta::{ClockConstraint, PathQuery, TimingAnalysis};

proptest! {
    /// For any valid schedule, margin × k == checking period (up to
    /// integer division) and the interval kinds are TB-before-ED.
    #[test]
    fn schedule_invariants(
        period in 200i64..5_000,
        c in 1.0f64..50.0,
        k_tb in 0u8..3,
        k_ed in 1u8..3,
    ) {
        let s = CheckingPeriod::new(Picos(period), c, k_tb, k_ed).unwrap();
        let k = (k_tb + k_ed) as i64;
        // interval = checking / k exactly (integer division).
        prop_assert_eq!(s.interval(), s.checking() / k);
        // TB intervals strictly precede ED intervals.
        let kinds = s.intervals();
        let first_ed = kinds.iter().position(|x| *x == timber_repro::core::IntervalKind::ErrorDetect);
        if let Some(i) = first_ed {
            prop_assert!(kinds[i..].iter().all(|x| *x == timber_repro::core::IntervalKind::ErrorDetect));
        }
        prop_assert_eq!(kinds.len() as u8, s.k());
        // The checking period never crosses the falling edge.
        prop_assert!(s.checking() <= Picos(period) / 2);
    }

    /// The TIMBER flip-flop's outcomes partition the arrival axis:
    /// OnTime up to the edge, Masked for overshoot ≤ δ, Escaped beyond.
    #[test]
    fn flipflop_outcome_partition(
        overshoot in -500i64..500,
        select in 0u8..3,
    ) {
        let period = Picos(1000);
        let s = CheckingPeriod::new(period, 12.0, 1, 2).unwrap();
        let mut ff = TimberFlipFlop::new(s);
        ff.set_select(select);
        let delta = ff.sampling_delay();
        let arrival = period + Picos(overshoot);
        match ff.capture(arrival, period) {
            CaptureOutcome::OnTime => prop_assert!(overshoot <= 0),
            CaptureOutcome::Masked { borrowed, units, .. } => {
                prop_assert!(overshoot > 0);
                prop_assert!(Picos(overshoot) <= delta);
                // Discrete borrowing: always whole units.
                prop_assert_eq!(borrowed, s.interval() * (select as i64 + 1));
                prop_assert_eq!(units, select + 1);
            }
            CaptureOutcome::Escaped { overshoot: esc } => {
                prop_assert!(Picos(overshoot) > delta);
                prop_assert_eq!(esc, Picos(overshoot) - delta);
            }
        }
    }

    /// The TIMBER latch borrows exactly the violation (continuous), and
    /// flags exactly when the violation exceeds the TB window.
    #[test]
    fn latch_borrowing_is_continuous(overshoot in 1i64..500) {
        let period = Picos(1000);
        let s = CheckingPeriod::new(period, 24.0, 1, 2).unwrap();
        let mut latch = TimberLatch::new(s);
        match latch.capture(period + Picos(overshoot), period) {
            CaptureOutcome::Masked { borrowed, flagged, .. } => {
                prop_assert_eq!(borrowed, Picos(overshoot));
                prop_assert_eq!(flagged, Picos(overshoot) > latch.tb_window());
                prop_assert!(Picos(overshoot) <= latch.checking_window());
            }
            CaptureOutcome::Escaped { .. } => {
                prop_assert!(Picos(overshoot) > latch.checking_window());
            }
            CaptureOutcome::OnTime => prop_assert!(false, "overshoot > 0 cannot be on time"),
        }
    }

    /// For any generated netlist, path enumeration returns paths in
    /// non-increasing delay order, the head equals the STA worst
    /// arrival, and every reported delay is consistent with re-summing
    /// its arcs.
    #[test]
    fn path_enumeration_is_sound(seed in 0u64..50) {
        let lib = CellLibrary::standard();
        let nl = random_dag(&lib, &RandomDagSpec {
            inputs: 8,
            outputs: 8,
            gates: 120,
            depth_bias: 0.6,
            seed,
        }).unwrap();
        let clk = ClockConstraint::with_period(Picos(2000));
        let sta = TimingAnalysis::run(&nl, &clk);
        let paths = timber_repro::sta::paths::enumerate_paths(&sta, &PathQuery {
            max_paths: 30,
            min_delay: Picos::MIN,
        });
        prop_assert!(!paths.is_empty());
        // Note: compare against the worst *endpoint* path, not
        // `worst_arrival()` — random DAGs contain dead-end internal
        // nets deeper than any registered output.
        prop_assert_eq!(paths[0].delay, sta.worst_path().delay);
        for w in paths.windows(2) {
            prop_assert!(w[0].delay >= w[1].delay);
        }
        for p in &paths {
            // Re-sum each path's arcs and check the reported delay lies
            // within the min/max-pin bounds (a gate may be fed the same
            // net on two pins with different arc delays, so an exact
            // single re-summation is not always well-defined).
            use timber_repro::netlist::Driver;
            use timber_repro::sta::paths::PathStart;
            let start_arr = match p.start {
                PathStart::PrimaryInput(_) => Picos::ZERO,
                PathStart::FlopQ(_) => clk.clk_to_q,
            };
            let (mut lo, mut hi) = (start_arr, start_arr);
            for w in p.nets.windows(2) {
                let (from, to) = (w[0], w[1]);
                if let Some(Driver::Instance(inst)) = nl.net(to).driver() {
                    let arcs: Vec<Picos> = nl
                        .instance(inst)
                        .inputs()
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n == from)
                        .map(|(pin, _)| sta.arc_delay(inst, pin))
                        .collect();
                    prop_assert!(!arcs.is_empty(), "path step must follow a real arc");
                    lo += arcs.iter().copied().fold(Picos::MAX, Picos::min);
                    hi += arcs.iter().copied().fold(Picos::MIN, Picos::max);
                }
            }
            prop_assert!(p.delay >= lo && p.delay <= hi,
                "path delay {} outside re-summed bounds [{}, {}]", p.delay, lo, hi);
        }
    }

    /// Telemetry counters must equal the sweep's own `RunStats`
    /// aggregates for the same seed, for every implemented scheme: the
    /// instrumentation observes the pipeline, it never re-derives it.
    #[test]
    fn telemetry_counters_match_stats_for_every_scheme(seed in 0u64..1000) {
        use timber_repro::core::{TimberFfScheme, TimberLatchScheme};
        use timber_repro::pipeline::{Environment, PipelineConfig, SequentialScheme, SweepSpec, TrialPoint};
        use timber_repro::schemes::{
            CanaryFf, LogicalMasking, MarginedFlop, RazorFf, SoftEdgeFf, TransitionDetectorFf,
        };
        use timber_repro::telemetry::Counter;
        use timber_repro::variability::{SensitizationModel, VariabilityBuilder};

        let period = Picos(1000);
        let sched = CheckingPeriod::deferred_flagging(period, 24.0).unwrap();
        let window = sched.checking();
        type Factory = Box<dyn Fn(&TrialPoint) -> Box<dyn SequentialScheme> + Sync>;
        let factories: Vec<(&str, Factory)> = vec![
            ("timber-ff", Box::new(move |_| Box::new(TimberFfScheme::new(sched, 4)))),
            ("timber-latch", Box::new(move |_| Box::new(TimberLatchScheme::new(sched, 4)))),
            ("razor-ff", Box::new(move |_| Box::new(RazorFf::new(window)))),
            ("transition-detector-ff", Box::new(move |_| Box::new(TransitionDetectorFf::new(window)))),
            ("canary-ff", Box::new(|_| Box::new(CanaryFf::new(Picos(80))))),
            ("soft-edge-ff", Box::new(move |_| Box::new(SoftEdgeFf::new(sched.interval())))),
            ("logical-masking", Box::new(move |p: &TrialPoint| Box::new(LogicalMasking::new(0.8, window, p.seed)))),
            ("conventional-ff", Box::new(|_| Box::new(MarginedFlop::new()))),
        ];
        let mut spec = SweepSpec::new(seed, 4_000, 2)
            .env("stress", move |p| Environment {
                config: PipelineConfig::new(4, period),
                sensitization: SensitizationModel::uniform(4, Picos(970), p.seed),
                variability: Box::new(
                    VariabilityBuilder::new(p.seed)
                        .voltage_droop(0.06, 400, 1500.0)
                        .local_jitter(0.01)
                        .build(),
                ),
            })
            .threads(2);
        for (name, factory) in &factories {
            spec = spec.scheme(name, factory);
        }
        let (result, recorders) = spec.run_with_telemetry(64);
        prop_assert_eq!(recorders.len(), factories.len());
        for (i, rec) in recorders.iter().enumerate() {
            let cell = result.cell(i, 0);
            let name = &factories[i].0;
            prop_assert_eq!(rec.counter(Counter::Cycles), cell.cycles, "{}: cycles", name);
            prop_assert_eq!(rec.counter(Counter::Masked), cell.masked, "{}: masked", name);
            prop_assert_eq!(rec.counter(Counter::Flagged), cell.flagged, "{}: flagged", name);
            prop_assert_eq!(rec.counter(Counter::Detected), cell.detected, "{}: detected", name);
            prop_assert_eq!(rec.counter(Counter::Predicted), cell.predicted, "{}: predicted", name);
            prop_assert_eq!(rec.counter(Counter::Corrupted), cell.corrupted, "{}: corrupted", name);
            prop_assert_eq!(rec.counter(Counter::PenaltyCycles), cell.penalty_cycles, "{}: penalty", name);
            prop_assert_eq!(rec.counter(Counter::SlowCycles), cell.slow_cycles, "{}: slow", name);
            prop_assert_eq!(rec.counter(Counter::ThrottleEpisodes), cell.slowdown_episodes, "{}: episodes", name);
        }
    }

    /// Distribution fractions measured on any processor model are
    /// monotone in the threshold and `both ⊆ ending`.
    #[test]
    fn processor_distribution_invariants(seed in 0u64..20) {
        use timber_repro::proc_model::{PerfPoint, ProcessorModel};
        let m = ProcessorModel::generate(PerfPoint::High, 2_000, Picos(1000), seed);
        let rows = m.distribution(&[10.0, 20.0, 30.0, 40.0]);
        for w in rows.windows(2) {
            prop_assert!(w[1].frac_ending >= w[0].frac_ending);
            prop_assert!(w[1].frac_start_and_end >= w[0].frac_start_and_end);
        }
        for r in rows {
            prop_assert!(r.frac_start_and_end <= r.frac_ending + 1e-12);
        }
    }
}
