//! Acceptance tests for the `timber-lint` design-rule checker: a
//! known-bad integration must fail, naming the offending endpoint and
//! a stable diagnostic code, and every shipped generator config must
//! pass at the CI gate's `--deny warn` threshold.

use timber_lint::{
    lint, DiagCode, LintConfig, PaddingPolicy, ReplacementPlan, ScheduleSpec, Severity,
};
use timber_netlist::{CellLibrary, FlopId, InstId, NetlistBuilder, Picos};
use timber_sta::{ClockConstraint, TimingAnalysis};

fn measured_config(nl: &timber_netlist::Netlist, spec: ScheduleSpec) -> LintConfig {
    let sta = TimingAnalysis::run(nl, &ClockConstraint::with_period(Picos(1_000_000)));
    let period = timber_lint::snap_period(sta.worst_arrival().scale(1.05) + Picos(30), &spec);
    LintConfig::new("acceptance", spec, ClockConstraint::with_period(period))
}

/// The headline acceptance case: an integration with an unpadded short
/// path fails with `TBR010`, and the diagnostic names the endpoint.
#[test]
fn known_bad_config_fails_naming_endpoint_and_code() {
    let lib = CellLibrary::standard();
    let mut b = NetlistBuilder::new("bad", &lib);
    let a = b.input("a");
    let src = b.flop("f_src", a);
    let mut x = src;
    for _ in 0..24 {
        x = b.gate("buf", &[x]).unwrap();
    }
    let crit = b.flop("f_crit", x);
    // Direct flop-to-flop wire: min arrival far below hold + checking.
    let short = b.flop("f_short_endpoint", src);
    b.output("o1", crit);
    b.output("o2", short);
    let nl = b.finish().unwrap();

    let cfg = measured_config(&nl, ScheduleSpec::deferred(30.0)).with_padding(PaddingPolicy::None);
    let report = lint(&nl, &cfg);

    assert!(!report.passes(false), "must fail even without --deny warn");
    let findings = report.with_code(DiagCode::UnpaddedShortPath);
    assert!(!findings.is_empty());
    assert!(
        findings
            .iter()
            .any(|d| d.subject.contains("f_short_endpoint")),
        "diagnostic must name the offending endpoint:\n{}",
        report.render()
    );
    assert!(findings[0].render().contains("TBR010"));
    assert!(findings[0].render().contains("§4"), "cites the paper rule");
}

/// An ill-formed schedule is rejected with schedule-class codes before
/// any netlist analysis runs.
#[test]
fn ill_formed_schedule_is_rejected() {
    let lib = CellLibrary::standard();
    let nl = timber_netlist::ripple_carry_adder(&lib, 4).unwrap();
    let spec = ScheduleSpec {
        checking_pct: 130.0,
        k_tb: 0,
        k_ed: 0,
        relay_increment: 0,
    };
    let cfg = LintConfig::new("broken", spec, ClockConstraint::with_period(Picos(0)));
    let report = lint(&nl, &cfg);
    assert!(!report.passes(false));
    assert!(!report.with_code(DiagCode::EmptySchedule).is_empty());
    assert!(!report.with_code(DiagCode::CheckingPercentRange).is_empty());
    assert!(!report.with_code(DiagCode::NonPositivePeriod).is_empty());
    assert_eq!(report.with_code(DiagCode::TimingChecksSkipped).len(), 1);
}

/// A partial replacement plan that strands a borrowing predecessor is
/// caught as a relay-coverage gap.
#[test]
fn coverage_gap_names_both_flops() {
    let lib = CellLibrary::standard();
    let mut b = NetlistBuilder::new("gap", &lib);
    let a = b.input("a");
    let mut x = b.flop("f_src", a);
    for _ in 0..12 {
        x = b.gate("buf", &[x]).unwrap();
    }
    let mut y = b.flop("f_mid", x);
    for _ in 0..12 {
        y = b.gate("buf", &[y]).unwrap();
    }
    let q = b.flop("f_end", y);
    b.output("o", q);
    let nl = b.finish().unwrap();
    let cfg = measured_config(&nl, ScheduleSpec::deferred(30.0))
        .with_replacement(ReplacementPlan::Explicit(vec![FlopId(2)]));
    let report = lint(&nl, &cfg);
    let gaps = report.with_code(DiagCode::RelayCoverageGap);
    assert_eq!(gaps.len(), 1, "{}", report.render());
    assert!(gaps[0].subject.contains("f_end"));
    assert!(gaps[0].message.contains("f_mid"));
}

/// Combinational loops are reported (all of them, with the full cycle)
/// instead of panicking, and structural errors suppress timing checks
/// with an explicit note.
#[test]
fn combinational_loop_reports_full_cycle_without_panicking() {
    let lib = CellLibrary::standard();
    let mut b = NetlistBuilder::new("cyclic", &lib);
    let a = b.input("a");
    let x = b.gate("inv", &[a]).unwrap();
    let y = b.gate("and2", &[x, a]).unwrap();
    let z = b.gate("or2", &[y, a]).unwrap();
    let q = b.flop("f", z);
    b.output("o", q);
    // Close a three-gate cycle: the inverter now reads the or-gate.
    b.rewire_input(InstId(0), 0, z);
    let nl = b.finish_unchecked();
    let cfg = LintConfig::new(
        "cyclic",
        ScheduleSpec::deferred(20.0),
        ClockConstraint::with_period(Picos(1200)),
    );
    let report = lint(&nl, &cfg);
    let loops = report.with_code(DiagCode::CombinationalLoop);
    assert_eq!(loops.len(), 1, "{}", report.render());
    // Full cycle path: three hops back to the start.
    assert!(
        loops[0].message.matches(" -> ").count() >= 3,
        "{}",
        loops[0].message
    );
    assert_eq!(report.with_code(DiagCode::TimingChecksSkipped).len(), 1);
    assert!(!report.passes(false));
}

/// The CI gate itself: every shipped generator config is clean under
/// `--deny warn`, the exact invocation `.github/workflows/ci.yml` runs.
#[test]
fn shipped_gate_configs_pass_deny_warn() {
    let lib = CellLibrary::standard();
    let designs = [
        timber_netlist::ripple_carry_adder(&lib, 16).unwrap(),
        timber_netlist::kogge_stone_adder(&lib, 16).unwrap(),
        timber_netlist::array_multiplier(&lib, 8).unwrap(),
        timber_netlist::alu(&lib, 8).unwrap(),
    ];
    for nl in &designs {
        let report = lint(nl, &measured_config(nl, ScheduleSpec::deferred(30.0)));
        assert_eq!(report.count(Severity::Error), 0, "{}", report.render());
        assert_eq!(report.count(Severity::Warn), 0, "{}", report.render());
    }
}
