//! Reproducibility: every stochastic component is seeded, so identical
//! configurations must produce bit-identical results.

use timber_repro::core::scheme::TimberFfScheme;
use timber_repro::core::CheckingPeriod;
use timber_repro::netlist::{random_dag, CellLibrary, Picos, RandomDagSpec};
use timber_repro::pipeline::{Environment, PipelineConfig, PipelineSim, SweepSpec};
use timber_repro::proc_model::{PerfPoint, ProcessorModel};
use timber_repro::sta::{ClockConstraint, TimingAnalysis};
use timber_repro::variability::{DelaySource, SensitizationModel, VariabilityBuilder};

#[test]
fn pipeline_runs_are_reproducible() {
    let run = || {
        let sched = CheckingPeriod::deferred_flagging(Picos(1000), 24.0).expect("valid");
        let mut scheme = TimberFfScheme::new(sched, 4);
        let mut sens = SensitizationModel::uniform(4, Picos(970), 99);
        let mut var = VariabilityBuilder::new(99)
            .voltage_droop(0.06, 400, 1500.0)
            .local_jitter(0.01)
            .build();
        PipelineSim::new(
            PipelineConfig::new(4, Picos(1000)),
            &mut scheme,
            &mut sens,
            &mut var,
        )
        .run(50_000)
    };
    assert_eq!(run(), run());
}

#[test]
fn sweeps_are_thread_count_invariant() {
    // The same SweepSpec must produce identical merged RunStats with
    // 1, 2 and 8 worker threads: per-trial seeds are derived from the
    // flat trial index (not the schedule), and worker results are
    // merged in canonical trial order.
    let sweep = |threads: usize| {
        SweepSpec::new(2010, 5_000, 6)
            .scheme("deferred", |_p| {
                let sched = CheckingPeriod::deferred_flagging(Picos(1000), 24.0).expect("valid");
                Box::new(TimberFfScheme::new(sched, 4))
            })
            .scheme("immediate", |_p| {
                let sched = CheckingPeriod::immediate_flagging(Picos(1000), 24.0).expect("valid");
                Box::new(TimberFfScheme::new(sched, 4))
            })
            .env("stress", |p| Environment {
                config: PipelineConfig::new(4, Picos(1000)),
                sensitization: SensitizationModel::uniform(4, Picos(970), p.seed),
                variability: Box::new(
                    VariabilityBuilder::new(p.seed)
                        .voltage_droop(0.06, 400, 1500.0)
                        .local_jitter(0.01)
                        .build(),
                ),
            })
            .threads(threads)
            .run()
    };
    let one = sweep(1);
    let two = sweep(2);
    let eight = sweep(8);
    for scheme in 0..2 {
        assert_eq!(one.cell(scheme, 0), two.cell(scheme, 0));
        assert_eq!(one.cell(scheme, 0), eight.cell(scheme, 0));
    }
    assert_eq!(one.total(), eight.total());
    // The environment must actually produce events, or invariance is
    // vacuous.
    assert!(one.total().violations() > 0);
}

#[test]
fn telemetry_traces_are_thread_count_invariant() {
    // The full exported trace document — counters, per-stage
    // histograms AND the surviving ring-buffer events — must be
    // byte-identical across thread counts: per-trial recorders are
    // merged in canonical flat trial order.
    let sweep = |threads: usize| {
        let (result, recorders) = SweepSpec::new(2010, 5_000, 6)
            .scheme("deferred", |_p| {
                let sched = CheckingPeriod::deferred_flagging(Picos(1000), 24.0).expect("valid");
                Box::new(TimberFfScheme::new(sched, 4))
            })
            .scheme("immediate", |_p| {
                let sched = CheckingPeriod::immediate_flagging(Picos(1000), 24.0).expect("valid");
                Box::new(TimberFfScheme::new(sched, 4))
            })
            .env("stress", |p| Environment {
                config: PipelineConfig::new(4, Picos(1000)),
                sensitization: SensitizationModel::uniform(4, Picos(970), p.seed),
                variability: Box::new(
                    VariabilityBuilder::new(p.seed)
                        .voltage_droop(0.06, 400, 1500.0)
                        .local_jitter(0.01)
                        .build(),
                ),
            })
            .threads(threads)
            .run_with_telemetry(128);
        let cells: Vec<(String, timber_repro::telemetry::Recorder)> = result
            .scheme_names()
            .iter()
            .cloned()
            .zip(recorders)
            .collect();
        (
            timber_repro::telemetry::trace_json("determinism", &cells),
            timber_repro::telemetry::trace_csv(&cells),
        )
    };
    let (json1, csv1) = sweep(1);
    let (json2, csv2) = sweep(2);
    let (json8, csv8) = sweep(8);
    assert_eq!(json1, json2);
    assert_eq!(json1, json8);
    assert_eq!(csv1, csv8);
    assert_eq!(csv1, csv2);
    // The trace must contain real events, or invariance is vacuous.
    assert!(csv1.lines().count() > 1, "trace is empty:\n{csv1}");
}

#[test]
fn sta_results_are_stable_across_runs() {
    let lib = CellLibrary::standard();
    let nl = random_dag(
        &lib,
        &RandomDagSpec {
            gates: 400,
            seed: 5,
            ..RandomDagSpec::default()
        },
    )
    .expect("generator");
    let clk = ClockConstraint::with_period(Picos(1500));
    let a = TimingAnalysis::run(&nl, &clk);
    let b = TimingAnalysis::run(&nl, &clk);
    for net in nl.net_ids() {
        assert_eq!(a.arrival(net), b.arrival(net));
    }
    assert_eq!(a.worst_path().nets, b.worst_path().nets);
}

#[test]
fn processor_models_are_reproducible_and_seed_sensitive() {
    let a = ProcessorModel::generate(PerfPoint::High, 5_000, Picos(1000), 1);
    let b = ProcessorModel::generate(PerfPoint::High, 5_000, Picos(1000), 1);
    assert_eq!(a.flops(), b.flops());
    let c = ProcessorModel::generate(PerfPoint::High, 5_000, Picos(1000), 2);
    assert_ne!(a.flops(), c.flops());
    // Calibration invariant holds for any seed.
    for seed in [1, 2, 3] {
        let m = ProcessorModel::generate(PerfPoint::Medium, 10_000, Picos(1000), seed);
        let rows = m.distribution(&[20.0]);
        assert!((rows[0].frac_ending - 0.50).abs() < 0.01);
    }
}

#[test]
fn variability_factors_are_pure_functions_of_seed_and_coordinates() {
    let build = || {
        VariabilityBuilder::new(31)
            .process(6, 0.04)
            .voltage_droop(0.08, 512, 1000.0)
            .temperature(0.02, 500_000)
            .aging(0.005)
            .local_jitter(0.01)
            .build()
    };
    let mut a = build();
    let mut b = build();
    for cycle in (0..10_000u64).step_by(37) {
        for stage in 0..6 {
            assert_eq!(a.factor(cycle, stage), b.factor(cycle, stage));
        }
    }
}

#[test]
fn waveform_demos_are_deterministic() {
    let a = timber_repro::core::circuit::two_stage_ff_demo(Picos(1000), Picos(20));
    let b = timber_repro::core::circuit::two_stage_ff_demo(Picos(1000), Picos(20));
    let ra = a.sim.waves().trace(a.err2).unwrap().samples().to_vec();
    let rb = b.sim.waves().trace(b.err2).unwrap().samples().to_vec();
    assert_eq!(ra, rb);
}
