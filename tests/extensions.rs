//! Integration coverage for the extension features: netlist-cone error
//! relay, corner-case circuit validation, VCD export, derating what-if
//! analysis, timing reports and design statistics.

use timber_repro::core::{validate_flipflop, validate_latch, CheckingPeriod, NetlistRelay};
use timber_repro::netlist::{kogge_stone_adder, CellLibrary, NetlistStats, Picos};
use timber_repro::proc_model::structural;
use timber_repro::proc_model::PerfPoint;
use timber_repro::sta::{
    derate_sweep, timing_report, ClockConstraint, TimingAnalysis, TimingSummary,
};
use timber_repro::wavesim::vcd;

#[test]
fn relay_network_on_a_real_processor_proxy() {
    let nl = structural::proxy_netlist(7);
    let period = structural::proxy_period(&nl, PerfPoint::High);
    let clk = ClockConstraint::with_period(period);
    let sta = TimingAnalysis::run(&nl, &clk);
    let schedule = CheckingPeriod::deferred_flagging(period, 24.0).expect("valid");
    let replaced = timber_repro::sta::PathDistribution::replacement_set(&sta, &nl, 24.0);
    assert!(!replaced.is_empty());
    let mut relay = NetlistRelay::from_netlist(&nl, &replaced, &schedule);
    // Inject an error at the first replaced flop and verify at least
    // one downstream select rises on the next cycle, then decays.
    let mut errors = vec![false; relay.len()];
    errors[0] = true;
    relay.step(&errors);
    let raised: usize = (0..relay.len()).filter(|&i| relay.select(i) > 0).count();
    // Possibly zero if flop 0 has no downstream replaced flop; inject
    // everywhere to guarantee propagation.
    let _ = raised;
    relay.reset();
    relay.step(&vec![true; relay.len()]);
    let raised_all: usize = (0..relay.len()).filter(|&i| relay.select(i) > 0).count();
    assert!(raised_all > 0, "a dense error wave must raise selects");
    relay.step(&vec![false; relay.len()]);
    relay.step(&vec![false; relay.len()]);
    assert!(
        (0..relay.len()).all(|i| relay.select(i) == 0),
        "selects must decay after clean cycles"
    );
}

#[test]
fn circuit_validation_passes_on_a_third_schedule_shape() {
    // Schedule shapes not covered by the unit tests: k = 4 and a wide
    // two-interval split.
    let s = CheckingPeriod::new(Picos(2000), 40.0, 2, 2).expect("valid");
    let ff = validate_flipflop(&s, timber_repro::core::validate::standard_sweep(&s, 25));
    assert!(ff.all_agree(), "{:#?}", ff.disagreements());
    let latch = validate_latch(&s, timber_repro::core::validate::standard_sweep(&s, 25));
    assert!(latch.all_agree(), "{:#?}", latch.disagreements());
}

#[test]
fn fig5_waveforms_export_as_valid_vcd() {
    let demo = timber_repro::core::circuit::two_stage_ff_demo(Picos(1000), Picos(20));
    let rows: Vec<(&str, timber_repro::wavesim::SigId)> = demo.rows.clone();
    let text = vcd::to_vcd(demo.sim.waves(), &rows, Picos(5000));
    assert!(text.starts_with("$comment"));
    assert!(text.contains("$var wire 1"));
    assert!(text.contains("Err2"));
    // Timestamps strictly increase.
    let mut last = -1i64;
    for line in text.lines() {
        if let Some(stripped) = line.strip_prefix('#') {
            let t: i64 = stripped.parse().expect("timestamp");
            assert!(t >= last, "timestamps must be non-decreasing");
            last = t;
        }
    }
}

#[test]
fn derate_sweep_quantifies_the_margin_sta_side() {
    let lib = CellLibrary::standard();
    let nl = kogge_stone_adder(&lib, 16).expect("generator");
    let probe = TimingAnalysis::run(&nl, &ClockConstraint::with_period(Picos(1_000_000)));
    // 10% margin over nominal critical (plus setup).
    let period = probe.worst_arrival().scale(1.10) + Picos(30);
    let clk = ClockConstraint::with_period(period);
    let points = derate_sweep(&nl, &clk, &[1.0, 1.05, 1.10, 1.15, 1.25]);
    assert_eq!(points[0].failing_endpoints, 0, "nominal must meet timing");
    assert!(
        points.last().expect("points").failing_endpoints > 0,
        "25% derating must break a 10% margin"
    );
    // The crossover sits between 1.10 and 1.25.
    let first_fail = points
        .iter()
        .find(|p| p.failing_endpoints > 0)
        .expect("failure point");
    assert!(first_fail.factor > 1.05);
}

#[test]
fn timing_report_and_stats_agree_on_design_size() {
    let lib = CellLibrary::standard();
    let nl = kogge_stone_adder(&lib, 8).expect("generator");
    let stats = NetlistStats::measure(&nl);
    assert_eq!(stats.instances, nl.instance_count());
    let clk = ClockConstraint::with_period(Picos(2000));
    let sta = TimingAnalysis::run(&nl, &clk);
    let summary = TimingSummary::measure(&sta, &nl);
    assert_eq!(summary.total_endpoints, stats.flops);
    assert!(summary.met());
    let report = timing_report(&nl, &sta, 3);
    assert!(report.contains("MET"));
    assert!(report.contains(&format!("{:?}", nl.name())));
}

#[test]
fn dag_pipeline_with_dag_relay_masks_reconvergent_errors() {
    use timber_repro::core::{CheckingPeriod, TimberDagScheme};
    use timber_repro::pipeline::{Topology, TopologySim};
    use timber_repro::variability::{SensitizationModel, VariabilityBuilder};

    let topo = Topology::diamond();
    let preds: Vec<Vec<usize>> = (0..topo.len()).map(|b| topo.preds(b).to_vec()).collect();
    let period = Picos(1000);
    let schedule = CheckingPeriod::deferred_flagging(period, 24.0).expect("valid");
    let mut scheme = TimberDagScheme::new(schedule, preds);
    let mut sens = SensitizationModel::uniform(topo.len(), Picos(970), 5);
    let mut var = VariabilityBuilder::new(5)
        .voltage_droop(0.05, 500, 2000.0)
        .local_jitter(0.005)
        .build();
    let stats = TopologySim::new(topo, period, &mut scheme, &mut sens, &mut var).run(80_000);
    assert!(stats.masked > 0, "stress must produce violations");
    assert_eq!(
        stats.corrupted, 0,
        "the DAG relay must keep reconvergent chains masked: {stats:?}"
    );
    // Chains can span the diamond (length >= 2 events recorded).
    assert!(stats.chain_histogram.first().copied().unwrap_or(0) > 0);
}
