//! Cross-model conformance at the workspace level: the analytical
//! simulator and the event-driven gate-level replay must agree on every
//! scheme, the pinned campaign must pass with complete coverage, the
//! seeded model-B bug must be caught, and the telemetry recorder's
//! counters must match the oracle's per-class counts on identical runs.

use proptest::prelude::*;

use timber_repro::conformance::{
    analytical_run_recorded, oracle, run_campaign, BurstShape, CampaignSpec, SchemeId, Workload,
};
use timber_repro::core::CheckingPeriod;
use timber_repro::netlist::Picos;
use timber_repro::telemetry::Counter;

fn sched() -> CheckingPeriod {
    CheckingPeriod::new(Picos(1000), 24.0, 1, 2).unwrap()
}

#[test]
fn both_models_agree_for_every_scheme_and_shape() {
    for id in SchemeId::ALL {
        for shape in BurstShape::ALL {
            let w = Workload::generate(sched(), 4, 40, shape, 99);
            let d = oracle::check(&w, id, 99, false);
            assert!(d.is_none(), "{id:?} {shape:?}: {}", d.unwrap());
        }
    }
}

#[test]
fn pinned_campaign_passes_with_complete_coverage() {
    let report = run_campaign(&CampaignSpec::pinned(7).threads(2));
    assert!(report.pass(), "{}", report.render());
    assert!(report.coverage_complete(), "{:?}", report.missing_cells());
    assert_eq!(report.cases_run, 640);
}

#[test]
fn campaign_report_is_thread_invariant() {
    let one = run_campaign(&CampaignSpec::pinned(21));
    let four = run_campaign(&CampaignSpec::pinned(21).threads(4));
    assert_eq!(one.json(), four.json(), "report must be byte-identical");
}

#[test]
fn sabotaged_model_produces_a_pasteable_reproducer() {
    let w = Workload::generate(sched(), 4, 48, BurstShape::TbSingle, 5);
    let d = oracle::check(&w, SchemeId::TimberFf, 5, true).expect("sabotage must diverge");
    let src = d.repro.test_source();
    assert!(src.contains("#[test]"), "{src}");
    assert!(src.contains("Workload::from_rows"), "{src}");
    assert!(src.contains("oracle::check"), "{src}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The telemetry `Recorder`'s counters (Masked / Flagged / Detected
    /// / Predicted / Corrupted / Relays) must equal the oracle's
    /// per-class counts on the same analytical run — for every scheme.
    #[test]
    fn telemetry_counters_match_oracle_counts(
        seed in any::<u64>(),
        shape_idx in 0usize..BurstShape::ALL.len(),
    ) {
        let shape = BurstShape::ALL[shape_idx];
        for id in SchemeId::ALL {
            let w = Workload::generate(sched(), 4, 32, shape, seed);
            let (run, rec) = analytical_run_recorded(&w, id, seed);
            let (masked, flagged, detected, predicted, corrupted, relays) = run.counts();
            prop_assert_eq!(rec.counter(Counter::Masked), masked, "{:?} masked", id);
            prop_assert_eq!(rec.counter(Counter::Flagged), flagged, "{:?} flagged", id);
            prop_assert_eq!(rec.counter(Counter::Detected), detected, "{:?} detected", id);
            prop_assert_eq!(rec.counter(Counter::Predicted), predicted, "{:?} predicted", id);
            prop_assert_eq!(rec.counter(Counter::Corrupted), corrupted, "{:?} corrupted", id);
            prop_assert_eq!(rec.counter(Counter::Relays), relays, "{:?} relays", id);
        }
    }
}
