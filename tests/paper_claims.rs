//! The paper's headline claims, checked end-to-end through the public
//! APIs (these are the assertions `EXPERIMENTS.md` summarises).

use timber_repro::core::circuit::{two_stage_ff_demo, two_stage_latch_demo};
use timber_repro::core::scheme::{TimberFfScheme, TimberLatchScheme};
use timber_repro::core::CheckingPeriod;
use timber_repro::netlist::Picos;
use timber_repro::pipeline::{PipelineConfig, PipelineSim, SequentialScheme};
use timber_repro::schemes::MarginedFlop;
use timber_repro::variability::{SensitizationModel, VariabilityBuilder};
use timber_repro::wavesim::Logic;

const PERIOD: Picos = Picos(1000);

/// §4: recovered margin is c/2 without the TB interval and c/3 with it.
#[test]
fn claim_margin_is_c_over_2_without_tb_and_c_over_3_with_tb() {
    for c in [10.0, 20.0, 30.0, 40.0] {
        let without = CheckingPeriod::immediate_flagging(PERIOD, c).expect("valid");
        let with = CheckingPeriod::deferred_flagging(PERIOD, c).expect("valid");
        assert!((without.recovered_margin_pct() - c / 2.0).abs() < 0.1);
        assert!((with.recovered_margin_pct() - c / 3.0).abs() < 0.1);
    }
}

/// §4/Fig. 2: with 2 ED intervals the consolidation budget is 1.5
/// cycles.
#[test]
fn claim_consolidation_budget_is_one_and_a_half_cycles() {
    let s = CheckingPeriod::deferred_flagging(PERIOD, 12.0).expect("valid");
    assert!((s.consolidation_budget_cycles() - 1.5).abs() < 1e-9);
}

/// Fig. 5: in the flip-flop design, the first stage's error is masked
/// silently and the second stage's error is masked *and* flagged once,
/// on the falling edge.
#[test]
fn claim_fig5_two_stage_error_masked_and_flagged_once() {
    let demo = two_stage_ff_demo(PERIOD, Picos(20));
    let waves = demo.sim.waves();
    assert!(waves.trace(demo.err1).unwrap().rising_edges().is_empty());
    let rises = waves.trace(demo.err2).unwrap().rising_edges();
    assert_eq!(rises.len(), 1);
    // Flag latched on a falling edge: at period*k + period/2.
    let t = rises[0].as_ps();
    let phase = t % PERIOD.as_ps();
    assert!(
        (phase - PERIOD.as_ps() / 2).abs() < 20,
        "flag must latch near the falling edge, got phase {phase}"
    );
    assert_eq!(demo.sim.value(demo.q1), Logic::One);
    assert_eq!(demo.sim.value(demo.q2), Logic::One);
}

/// Fig. 7: same scenario with TIMBER latches; no relay logic needed.
#[test]
fn claim_fig7_latch_masks_without_relay() {
    let demo = two_stage_latch_demo(PERIOD, Picos(20));
    let waves = demo.sim.waves();
    assert!(waves.trace(demo.err1).unwrap().rising_edges().is_empty());
    assert_eq!(waves.trace(demo.err2).unwrap().rising_edges().len(), 1);
    assert_eq!(demo.sim.value(demo.q2), Logic::One);
}

fn stress_run(scheme: &mut dyn SequentialScheme, cycles: u64) -> timber_repro::pipeline::RunStats {
    let stages = 5;
    let mut sens = SensitizationModel::uniform(stages, Picos(970), 7);
    let mut var = VariabilityBuilder::new(7)
        .voltage_droop(0.05, 500, 2000.0)
        .local_jitter(0.005)
        .build();
    PipelineSim::new(
        PipelineConfig::new(stages, PERIOD),
        scheme,
        &mut sens,
        &mut var,
    )
    .run(cycles)
}

/// §1/§6: TIMBER recovers the margin "without roll-back or instruction
/// replay" and with "negligible loss in performance".
#[test]
fn claim_no_replay_and_negligible_performance_loss() {
    let sched = CheckingPeriod::deferred_flagging(PERIOD, 24.0).expect("valid");
    let mut timber = TimberFfScheme::new(sched, 5);
    let stats = stress_run(&mut timber, 100_000);
    assert!(stats.masked > 0, "environment must generate violations");
    assert_eq!(stats.corrupted, 0, "TIMBER must mask everything here");
    assert_eq!(stats.penalty_cycles, 0, "no replay bubbles ever");
    assert!(
        stats.throughput_loss(PERIOD) < 0.01,
        "loss {}",
        stats.throughput_loss(PERIOD)
    );
}

/// §3: single-stage timing errors dominate multi-stage ones.
#[test]
fn claim_single_stage_errors_dominate() {
    let sched = CheckingPeriod::deferred_flagging(PERIOD, 24.0).expect("valid");
    let mut timber = TimberFfScheme::new(sched, 5);
    let stats = stress_run(&mut timber, 250_000);
    assert!(stats.violations() > 10);
    assert!(
        stats.multi_stage_fraction() < 0.25,
        "multi-stage fraction {} should be a small minority",
        stats.multi_stage_fraction()
    );
    let singles = stats.chain_histogram.first().copied().unwrap_or(0);
    let longest = stats.chain_histogram.len();
    assert!(singles > 0);
    // The select input saturates at k-1, so chains slightly longer than
    // k stay maskable when the accumulated overshoot still fits within
    // the saturated sampling delay; anything much longer would mean the
    // frequency controller failed to engage.
    assert!(
        longest <= sched.maskable_stages() as usize + 2,
        "chains of length {longest} should not appear at this stress level (k={})",
        sched.maskable_stages()
    );
}

/// The same environment corrupts a conventional design — the reason
/// margins exist at all.
#[test]
fn claim_conventional_design_corrupts_without_margin() {
    let mut margined = MarginedFlop::new();
    let stats = stress_run(&mut margined, 100_000);
    assert!(stats.corrupted > 0);
}

/// §5.2: the TIMBER latch masks the same errors with no error-relay
/// state and never flags a false error.
#[test]
fn claim_latch_masks_without_relay_state() {
    let sched = CheckingPeriod::deferred_flagging(PERIOD, 24.0).expect("valid");
    let mut latch = TimberLatchScheme::new(sched, 5);
    let stats = stress_run(&mut latch, 100_000);
    assert_eq!(stats.corrupted, 0);
    assert!(stats.masked > 0);
    // No violation → no flag: run a nominal environment and check.
    let mut latch = TimberLatchScheme::new(sched, 5);
    let mut sens = SensitizationModel::uniform(5, Picos(900), 3);
    let mut var = timber_repro::variability::CompositeVariability::nominal();
    let nominal = PipelineSim::new(
        PipelineConfig::new(5, PERIOD),
        &mut latch,
        &mut sens,
        &mut var,
    )
    .run(60_000);
    assert_eq!(nominal.flagged, 0, "no false error flags");
    assert_eq!(nominal.violations(), 0);
}
