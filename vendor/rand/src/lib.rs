//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships this minimal implementation of the
//! `rand` 0.8 surface it actually uses: [`rngs::StdRng`], the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 generator of the real crate — so
//! streams differ from upstream `rand`, but every property the
//! reproduction relies on holds: seed determinism, cheap construction
//! (no heap allocation, a handful of integer ops), and good statistical
//! quality for Monte-Carlo use.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` by widening multiply
/// (bias is below 2^-64 per unit of span — negligible here).
#[inline]
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((u128::from(rng_bits) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(bounded(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(bounded(rng.next_u64(), span)) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start.max(self.end - self.end.abs() * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// One SplitMix64 step: advances `*state` and returns the next output.
#[inline]
pub(crate) fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64_next, RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Construction is allocation-free and costs four SplitMix64 steps,
    /// which keeps counter-mode uses (one short-lived generator per
    /// coordinate) cheap on simulation hot paths.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64_next(&mut sm),
                    splitmix64_next(&mut sm),
                    splitmix64_next(&mut sm),
                    splitmix64_next(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is almost surely not identity"
        );
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
