//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships this minimal benchmark harness
//! covering the surface the benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is real (`std::time::Instant` around each sample) but
//! deliberately simple: no outlier analysis, no HTML reports, no
//! saved baselines. Each `iter` call runs a short warmup followed by
//! `sample_size` timed samples and prints min / mean / max per-sample
//! wall time. Workloads here are millisecond-scale experiment bodies,
//! so one closure invocation per sample resolves fine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.param);
        run_one(&full, self.criterion.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Id rendering only the parameter value.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }

    /// Id with a function-name prefix and a parameter value.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        BenchmarkId {
            param: format!("{name}/{param}"),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: short warmup, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function. Supports both the
/// `name = ...; config = ...; targets = ...` form and the positional
/// `criterion_group!(group, target1, target2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        // 2 warmup + 3 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| {
                hits += x;
                std::hint::black_box(hits)
            })
        });
        group.finish();
        assert_eq!(hits, 7 * 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
