//! Offline, API-compatible subset of the `serde_json` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships this minimal implementation of the
//! surface it actually uses: the [`Value`] tree, the [`json!`] macro,
//! [`to_string`] / [`to_string_pretty`] and [`from_str`].
//!
//! Instead of the serde `Serialize`/`Deserialize` machinery, values are
//! converted through the [`ToJson`] trait; objects preserve insertion
//! order (the real crate's `preserve_order` behaviour), which keeps
//! report output byte-stable.

use std::fmt;
use std::ops::Index;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number.
///
/// Equality compares the two integer variants by value (`I64(1)` equals
/// `U64(1)`) because the parser normalises non-negative integers to
/// `U64` while the [`json!`] macro yields `I64` for signed literals.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            (Number::I64(a), Number::U64(b)) | (Number::U64(b), Number::I64(a)) => {
                a >= 0 && a as u64 == b
            }
            _ => false,
        }
    }
}

/// Error type for serialisation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

const NULL: Value = Value::Null;

impl Value {
    /// Returns the array elements when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string contents when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value as `f64` when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the numeric value as `u64` when this is a non-negative
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the boolean when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up an object key, returning `Null` when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(Number::I64(v)) => out.push_str(&v.to_string()),
            Value::Number(Number::U64(v)) => out.push_str(&v.to_string()),
            Value::Number(Number::F64(v)) => {
                if v.is_finite() {
                    out.push_str(&format_f64(*v));
                } else {
                    // JSON cannot express NaN/inf; match serde_json's
                    // arbitrary-precision fallback of null.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|n| n + 1));
                    item.write(out, indent.map(|n| n + 1));
                }
                if !items.is_empty() {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|n| n + 1));
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|n| n + 1));
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

/// Shortest `f64` rendering that still parses back exactly, with a
/// trailing `.0` on integral values so the type survives a round trip.
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, if f.alternate() { Some(0) } else { None });
        f.write_str(&out)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Conversion into a [`Value`], used by the [`json!`] macro.
///
/// Implemented by reference so `json!` never moves its operands
/// (matching the real macro, which serialises through `&T: Serialize`).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

to_json_signed!(i8, i16, i32, i64, isize);
to_json_unsigned!(u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax: `null`, `[..]` arrays,
/// `{ "key": value }` objects and arbitrary Rust expressions.
///
/// Unlike the real crate's token-munching macro, container *values*
/// must be Rust expressions — write `json!({"inner": json!([1, 2])})`
/// and `Value::Null` rather than nesting bare `[..]`/`null` literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails for tree-shaped [`Value`]s; the `Result` mirrors the
/// real crate's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, None);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for tree-shaped [`Value`]s; the `Result` mirrors the
/// real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, Some(0));
    Ok(out)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: format!("{message} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(pairs));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the
                            // report format; map them to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(if v >= 0 {
                    Number::U64(v as u64)
                } else {
                    Number::I64(v)
                }));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_trees() {
        let list = vec![1u64, 2, 3];
        let v = json!({
            "name": "claims",
            "ok": true,
            "count": 3u64,
            "ratio": 0.5,
            "hist": list,
            "nested": json!({"inner": json!([1, 2])}),
            "nothing": Value::Null,
        });
        assert_eq!(v["name"], "claims");
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["hist"].as_array().unwrap().len(), 3);
        assert_eq!(v["nested"]["inner"][1].as_u64(), Some(2));
        assert_eq!(v["nothing"], Value::Null);
        assert_eq!(v["absent"], Value::Null);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let v = json!({
            "s": "a \"quoted\"\nline",
            "i": -5,
            "u": 18_000_000_000_000_000_000u64,
            "f": 1.25,
            "arr": json!([true, false, Value::Null]),
            "obj": json!({"k": 1}),
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -0.0625] {
            let text = to_string(&json!(f)).unwrap();
            let back = from_str(&text).unwrap();
            assert_eq!(back.as_f64(), Some(f), "{text}");
        }
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let text = to_string(&json!(2.0f64)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str(&text).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn display_matches_to_string() {
        let v = json!({"a": [1, 2], "b": "x"});
        assert_eq!(format!("{v}"), to_string(&v).unwrap());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = json!({"a": [1, 2], "b": json!({"c": true})});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        assert_eq!(from_str(&text).unwrap(), v);
    }
}
