//! Value-generation strategies (no shrinking in this offline subset).

use rand::{rngs::StdRng, Rng};

/// A source of generated values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy drawing from the standard distribution of `T`
/// (`any::<u64>()` is uniform over all 64-bit values).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
