//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships this minimal property-testing
//! harness covering the surface the test suite uses: the [`proptest!`]
//! macro, `prop_assert*` macros, range / tuple / [`collection::vec`]
//! strategies, [`strategy::Just`], `any::<T>()` and
//! [`strategy::Strategy::prop_map`].
//!
//! Unlike the real crate there is **no shrinking** and no persisted
//! failure file: each test runs `ProptestConfig::cases` deterministic
//! cases seeded from the test's name, so failures reproduce exactly on
//! re-run and CI behaviour is stable without network or disk state.

use rand::rngs::StdRng;

pub mod strategy;

/// Per-test configuration accepted by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; this keeps the
    /// no-shrinking offline harness fast while still exercising each
    /// property broadly).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of a test name, used as the deterministic seed root.
#[doc(hidden)]
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic per-case generator: seeded from the test name and the
/// case index, so re-runs and thread counts never change the inputs.
#[doc(hidden)]
pub fn rng_for_case(name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let seed = fnv1a(name) ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(seed)
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Strategy for `Vec`s with element strategy `S` and a uniformly
    /// drawn length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: `vec(elem, 0..6)` yields vectors of 0 to 5
    /// elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `ProptestConfig::cases` deterministic
/// cases (attributes written inside the block, including `#[test]`,
/// are re-emitted verbatim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::rng_for_case(stringify!($name), case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// `assert!` under a property (no shrinking in this offline subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($args:tt)+) => { assert!($cond, $($args)+) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($args:tt)+) => { assert_eq!($a, $b, $($args)+) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($args:tt)+) => { assert_ne!($a, $b, $($args)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn cases_are_deterministic_per_name() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let a = strat.generate(&mut crate::rng_for_case("t", 3));
        let b = strat.generate(&mut crate::rng_for_case("t", 3));
        let c = strat.generate(&mut crate::rng_for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let strat = crate::collection::vec(0u8..4, 2..6);
        for case in 0..200 {
            let v = strat.generate(&mut crate::rng_for_case("v", case));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1i64..10, 1i64..10).prop_map(|(a, b)| a * b);
        for case in 0..100 {
            let v = strat.generate(&mut crate::rng_for_case("m", case));
            assert!((1..100).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: ranges, inclusive ranges, any and Just.
        #[test]
        fn macro_generates_in_range(
            a in 5usize..=9,
            b in -3i64..3,
            c in any::<u64>(),
            d in Just(42u8),
        ) {
            prop_assert!((5..=9).contains(&a));
            prop_assert!((-3..3).contains(&b), "b = {}", b);
            let _ = c;
            prop_assert_eq!(d, 42);
        }
    }
}
