//! # timber-repro
//!
//! Umbrella crate for the reproduction of *TIMBER: Time borrowing and
//! error relaying for online timing error resilience* (Choudhury, Chandra,
//! Mohanram, Aitken — DATE 2010).
//!
//! This crate re-exports every subsystem so examples and integration
//! tests can use one dependency. See the repository `README.md` for the
//! architecture overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example
//!
//! ```
//! use timber_repro::netlist::CellLibrary;
//!
//! let lib = CellLibrary::standard();
//! assert!(lib.find("nand2").is_some());
//! ```

#![warn(missing_docs)]

pub use timber_netlist as netlist;
pub use timber_proc as proc_model;
pub use timber_sta as sta;

pub use timber as core;
pub use timber_conformance as conformance;
pub use timber_lint as lint;
pub use timber_pipeline as pipeline;
pub use timber_power as power;
pub use timber_schemes as schemes;
pub use timber_telemetry as telemetry;
pub use timber_tune as tune;
pub use timber_variability as variability;
pub use timber_wavesim as wavesim;
